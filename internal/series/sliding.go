package series

import "fmt"

// SlidingSum maintains the sum of the most recent window of values in O(1)
// per update. It is the building block for the DPD's incremental per-lag
// distance accumulators: each lag m keeps one SlidingSum of |x[t]-x[t-m]|.
type SlidingSum struct {
	ring *Ring
	sum  float64
}

// NewSlidingSum returns a sliding sum over a window of the given size.
func NewSlidingSum(window int) *SlidingSum {
	return &SlidingSum{ring: NewRing(window)}
}

// Window returns the configured window size.
func (s *SlidingSum) Window() int { return s.ring.Cap() }

// Len returns the number of values currently inside the window.
func (s *SlidingSum) Len() int { return s.ring.Len() }

// Full reports whether the window has been filled at least once.
func (s *SlidingSum) Full() bool { return s.ring.Full() }

// Push adds a value and returns the updated sum over the window.
func (s *SlidingSum) Push(v float64) float64 {
	evicted, wasFull := s.ring.Push(v)
	s.sum += v
	if wasFull {
		s.sum -= evicted
	}
	return s.sum
}

// Sum returns the current sum over the retained window.
func (s *SlidingSum) Sum() float64 { return s.sum }

// Mean returns the current mean over the retained window (0 if empty).
func (s *SlidingSum) Mean() float64 {
	if s.ring.Len() == 0 {
		return 0
	}
	return s.sum / float64(s.ring.Len())
}

// Reset discards the window contents.
func (s *SlidingSum) Reset() {
	s.ring.Reset()
	s.sum = 0
}

// Recompute recalculates the sum from the retained samples, discarding any
// accumulated floating-point drift. The DPD calls this periodically on
// long-running magnitude streams.
func (s *SlidingSum) Recompute() {
	var sum float64
	for i := 0; i < s.ring.Len(); i++ {
		sum += s.ring.At(i)
	}
	s.sum = sum
}

// SlidingCount maintains the count of non-zero entries in the most recent
// window in O(1) per update. It implements the event-stream metric
// (paper eq. 2): d(m) = sign(Σ mismatches) is zero exactly when the
// mismatch count over the window is zero.
type SlidingCount struct {
	bits  []uint8
	head  int
	count int // number of valid entries
	ones  int // number of set bits among valid entries
}

// NewSlidingCount returns a sliding non-zero counter over a window.
func NewSlidingCount(window int) *SlidingCount {
	if window <= 0 {
		panic(fmt.Sprintf("series: sliding count window must be positive, got %d", window))
	}
	return &SlidingCount{bits: make([]uint8, window)}
}

// Window returns the configured window size.
func (s *SlidingCount) Window() int { return len(s.bits) }

// Len returns the number of entries currently inside the window.
func (s *SlidingCount) Len() int { return s.count }

// Full reports whether the window has been filled at least once.
func (s *SlidingCount) Full() bool { return s.count == len(s.bits) }

// Push records whether the latest comparison mismatched and returns the
// number of mismatches now inside the window.
func (s *SlidingCount) Push(mismatch bool) int {
	var b uint8
	if mismatch {
		b = 1
	}
	if s.count < len(s.bits) {
		idx := s.head + s.count
		if idx >= len(s.bits) {
			idx -= len(s.bits)
		}
		s.bits[idx] = b
		s.count++
		s.ones += int(b)
		return s.ones
	}
	old := s.bits[s.head]
	s.bits[s.head] = b
	s.head++
	if s.head == len(s.bits) {
		s.head = 0
	}
	s.ones += int(b) - int(old)
	return s.ones
}

// Ones returns the current number of mismatches inside the window.
func (s *SlidingCount) Ones() int { return s.ones }

// Zero reports whether the window is full and contains no mismatches,
// i.e. d(m) == 0 in the sense of paper eq. (2).
func (s *SlidingCount) Zero() bool { return s.Full() && s.ones == 0 }

// Reset discards the window contents.
func (s *SlidingCount) Reset() {
	s.head = 0
	s.count = 0
	s.ones = 0
}

// SlidingMin maintains the minimum of the most recent window of values in
// amortized O(1) per update using a monotonic deque. The DPD uses it to
// track the best (deepest) distance seen across a probation interval.
type SlidingMin struct {
	window int
	// deque of (index, value) with strictly increasing values
	idx []uint64
	val []float64
	t   uint64 // number of pushes so far
}

// NewSlidingMin returns a sliding minimum over a window of the given size.
func NewSlidingMin(window int) *SlidingMin {
	if window <= 0 {
		panic(fmt.Sprintf("series: sliding min window must be positive, got %d", window))
	}
	return &SlidingMin{window: window}
}

// Push adds a value and returns the minimum over the last `window` values.
func (s *SlidingMin) Push(v float64) float64 {
	// Drop entries that can never be the minimum again.
	for len(s.val) > 0 && s.val[len(s.val)-1] >= v {
		s.val = s.val[:len(s.val)-1]
		s.idx = s.idx[:len(s.idx)-1]
	}
	s.val = append(s.val, v)
	s.idx = append(s.idx, s.t)
	s.t++
	// Expire the front if it fell out of the window.
	if s.idx[0]+uint64(s.window) <= s.t-1 {
		s.idx = s.idx[1:]
		s.val = s.val[1:]
	}
	return s.val[0]
}

// Min returns the current windowed minimum. It panics if no value was pushed.
func (s *SlidingMin) Min() float64 {
	if len(s.val) == 0 {
		panic("series: Min on empty SlidingMin")
	}
	return s.val[0]
}

// Reset discards all state.
func (s *SlidingMin) Reset() {
	s.idx = s.idx[:0]
	s.val = s.val[:0]
	s.t = 0
}

// EWMA is an exponentially weighted moving average with bias-corrected
// warm-up, used by the SelfAnalyzer to smooth per-iteration timings.
type EWMA struct {
	alpha float64
	value float64
	n     uint64
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("series: EWMA alpha must be in (0,1], got %g", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Push folds in a new observation and returns the updated average.
func (e *EWMA) Push(v float64) float64 {
	e.n++
	if e.n == 1 {
		e.value = v
		return v
	}
	e.value += e.alpha * (v - e.value)
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Count returns the number of observations folded in.
func (e *EWMA) Count() uint64 { return e.n }

// Reset discards all state.
func (e *EWMA) Reset() {
	e.value = 0
	e.n = 0
}
