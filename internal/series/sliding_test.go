package series

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlidingSumWarmup(t *testing.T) {
	s := NewSlidingSum(3)
	if got := s.Push(1); got != 1 {
		t.Errorf("sum=%v, want 1", got)
	}
	if got := s.Push(2); got != 3 {
		t.Errorf("sum=%v, want 3", got)
	}
	if s.Full() {
		t.Error("Full before window filled")
	}
	if got := s.Push(3); got != 6 {
		t.Errorf("sum=%v, want 6", got)
	}
	if !s.Full() {
		t.Error("not Full after window filled")
	}
}

func TestSlidingSumEviction(t *testing.T) {
	s := NewSlidingSum(3)
	for _, v := range []float64{1, 2, 3} {
		s.Push(v)
	}
	if got := s.Push(10); got != 15 { // 2+3+10
		t.Errorf("sum=%v, want 15", got)
	}
	if got := s.Push(-5); got != 8 { // 3+10-5
		t.Errorf("sum=%v, want 8", got)
	}
}

func TestSlidingSumMean(t *testing.T) {
	s := NewSlidingSum(4)
	if s.Mean() != 0 {
		t.Errorf("empty mean=%v, want 0", s.Mean())
	}
	s.Push(2)
	s.Push(4)
	if s.Mean() != 3 {
		t.Errorf("mean=%v, want 3 over partial window", s.Mean())
	}
}

func TestSlidingSumRecomputeFixesDrift(t *testing.T) {
	s := NewSlidingSum(4)
	// Deliberately poison the accumulated sum, then recompute.
	for _, v := range []float64{1, 2, 3, 4} {
		s.Push(v)
	}
	s.sum = 1e9
	s.Recompute()
	if s.Sum() != 10 {
		t.Fatalf("recomputed sum=%v, want 10", s.Sum())
	}
}

// Property: the incremental sliding sum equals a naive window sum at every
// step. This is the exact invariant the DPD's per-lag accumulators rely on.
func TestSlidingSumPropertyMatchesNaive(t *testing.T) {
	f := func(vals []float64, wRaw uint8) bool {
		// Keep values tame so float comparison is exact-ish.
		w := int(wRaw%10) + 1
		s := NewSlidingSum(w)
		hist := make([]float64, 0, len(vals))
		for _, raw := range vals {
			v := float64(int64(raw)) // integral values: exact float addition
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				v = 1
			}
			hist = append(hist, v)
			got := s.Push(v)
			lo := len(hist) - w
			if lo < 0 {
				lo = 0
			}
			var want float64
			for _, h := range hist[lo:] {
				want += h
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSlidingCountBasics(t *testing.T) {
	c := NewSlidingCount(3)
	if c.Push(true) != 1 || c.Push(false) != 1 || c.Push(true) != 2 {
		t.Fatal("warmup counts wrong")
	}
	if !c.Full() {
		t.Fatal("not full after window pushes")
	}
	// Evicts the first true.
	if got := c.Push(false); got != 1 {
		t.Fatalf("after eviction ones=%d, want 1", got)
	}
}

func TestSlidingCountZeroRequiresFullWindow(t *testing.T) {
	c := NewSlidingCount(4)
	c.Push(false)
	c.Push(false)
	if c.Zero() {
		t.Fatal("Zero=true on partially filled window")
	}
	c.Push(false)
	c.Push(false)
	if !c.Zero() {
		t.Fatal("Zero=false on full all-match window")
	}
	c.Push(true)
	if c.Zero() {
		t.Fatal("Zero=true with a mismatch inside the window")
	}
}

func TestSlidingCountMismatchExpiry(t *testing.T) {
	c := NewSlidingCount(3)
	c.Push(true)
	c.Push(false)
	c.Push(false)
	if c.Zero() {
		t.Fatal("mismatch still in window")
	}
	c.Push(false) // the true falls out
	if !c.Zero() {
		t.Fatal("mismatch should have expired")
	}
}

func TestSlidingCountReset(t *testing.T) {
	c := NewSlidingCount(2)
	c.Push(true)
	c.Reset()
	if c.Ones() != 0 || c.Len() != 0 {
		t.Fatalf("after reset Ones=%d Len=%d", c.Ones(), c.Len())
	}
}

// Property: sliding count equals the number of true values among the last
// `window` pushes.
func TestSlidingCountPropertyMatchesNaive(t *testing.T) {
	f := func(bits []bool, wRaw uint8) bool {
		w := int(wRaw%12) + 1
		c := NewSlidingCount(w)
		for i, b := range bits {
			got := c.Push(b)
			lo := i + 1 - w
			if lo < 0 {
				lo = 0
			}
			want := 0
			for _, x := range bits[lo : i+1] {
				if x {
					want++
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSlidingMinBasics(t *testing.T) {
	m := NewSlidingMin(3)
	seq := []float64{5, 3, 4, 1, 2, 6, 7}
	want := []float64{5, 3, 3, 1, 1, 1, 2}
	for i, v := range seq {
		if got := m.Push(v); got != want[i] {
			t.Errorf("step %d: min=%v, want %v", i, got, want[i])
		}
	}
}

func TestSlidingMinPanicsEmpty(t *testing.T) {
	m := NewSlidingMin(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Min on empty did not panic")
		}
	}()
	m.Min()
}

// Property: sliding min equals naive min over the trailing window.
func TestSlidingMinPropertyMatchesNaive(t *testing.T) {
	f := func(vals []float64, wRaw uint8) bool {
		w := int(wRaw%9) + 1
		m := NewSlidingMin(w)
		for i, v := range vals {
			if math.IsNaN(v) {
				v = 0
			}
			got := m.Push(v)
			lo := i + 1 - w
			if lo < 0 {
				lo = 0
			}
			want := math.Inf(1)
			for j := lo; j <= i; j++ {
				x := vals[j]
				if math.IsNaN(x) {
					x = 0
				}
				if x < want {
					want = x
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEWMAFirstObservationIsExact(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Push(42); got != 42 {
		t.Fatalf("first push=%v, want 42", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 200; i++ {
		e.Push(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("EWMA of constant 7 = %v", e.Value())
	}
}

func TestEWMATracksStep(t *testing.T) {
	e := NewEWMA(0.5)
	e.Push(0)
	for i := 0; i < 30; i++ {
		e.Push(10)
	}
	if math.Abs(e.Value()-10) > 1e-3 {
		t.Fatalf("EWMA after step = %v, want ~10", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func BenchmarkSlidingSumPush(b *testing.B) {
	s := NewSlidingSum(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(float64(i & 0xff))
	}
}

func BenchmarkSlidingCountPush(b *testing.B) {
	c := NewSlidingCount(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Push(i%7 == 0)
	}
}
