package series

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanAbsDev returns the mean absolute deviation around the mean. The DPD
// uses it as the significance scale for eq. (1) local minima: a minimum is
// only meaningful if it is deep relative to the stream's own variability.
func MeanAbsDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += math.Abs(x - m)
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for an empty slice). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("series: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// ArgMin returns the index of the smallest element. Ties resolve to the
// smallest index, which for the DPD means the smallest candidate lag — the
// fundamental period rather than one of its multiples. It panics on empty
// input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("series: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
// xs is not modified. It panics on empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("series: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("series: quantile %g outside [0,1]", q))
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	if len(tmp) == 1 {
		return tmp[0]
	}
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// L1Distance returns (1/n)·Σ|a[i]−b[i]|, the paper's eq. (1) distance
// between two aligned frames. It panics on length mismatch.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("series: L1Distance length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// HammingDistance returns the number of positions where a and b differ,
// the integer form underlying the paper's eq. (2). It panics on length
// mismatch.
func HammingDistance(a, b []int64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("series: HammingDistance length mismatch %d vs %d", len(a), len(b)))
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// IsPeriodic reports whether xs is exactly p-periodic over its whole
// length: xs[i] == xs[i-p] for all i >= p. A slice shorter than p+1
// elements is vacuously periodic.
func IsPeriodic(xs []float64, p int) bool {
	if p <= 0 {
		return false
	}
	for i := p; i < len(xs); i++ {
		if xs[i] != xs[i-p] {
			return false
		}
	}
	return true
}

// IsPeriodicInt is IsPeriodic for integer event streams.
func IsPeriodicInt(xs []int64, p int) bool {
	if p <= 0 {
		return false
	}
	for i := p; i < len(xs); i++ {
		if xs[i] != xs[i-p] {
			return false
		}
	}
	return true
}

// FundamentalPeriod returns the smallest p in [1, maxP] for which xs is
// exactly p-periodic, or 0 if none is. This is the ground-truth oracle the
// property tests compare the online detector against.
func FundamentalPeriod(xs []float64, maxP int) int {
	for p := 1; p <= maxP && p < len(xs); p++ {
		if IsPeriodic(xs, p) {
			return p
		}
	}
	return 0
}

// FundamentalPeriodInt is FundamentalPeriod for integer event streams.
func FundamentalPeriodInt(xs []int64, maxP int) int {
	for p := 1; p <= maxP && p < len(xs); p++ {
		if IsPeriodicInt(xs, p) {
			return p
		}
	}
	return 0
}
