package series

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); got != c.want {
			t.Errorf("Mean(%v)=%v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStddev(t *testing.T) {
	if Variance([]float64{3}) != 0 {
		t.Error("variance of singleton must be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance=%v, want 4", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Stddev=%v, want 2", got)
	}
}

func TestMeanAbsDev(t *testing.T) {
	xs := []float64{1, 1, 1, 1}
	if MeanAbsDev(xs) != 0 {
		t.Error("MAD of constant must be 0")
	}
	xs = []float64{0, 10}
	if got := MeanAbsDev(xs); got != 5 {
		t.Errorf("MAD=%v, want 5", got)
	}
	if MeanAbsDev(nil) != 0 {
		t.Error("MAD of empty must be 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median=%v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median=%v", got)
	}
	if Median(nil) != 0 {
		t.Error("empty median must be 0")
	}
	// Input must not be reordered.
	xs := []float64{9, 1}
	Median(xs)
	if xs[0] != 9 {
		t.Error("Median mutated input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -2, 8, 0})
	if lo != -2 || hi != 8 {
		t.Errorf("MinMax=(%v,%v)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestArgMinTieBreaksLow(t *testing.T) {
	// Equal minima: the smaller index must win — this is the rule that makes
	// the detector prefer the fundamental period over its multiples.
	xs := []float64{5, 1, 3, 1, 1}
	if got := ArgMin(xs); got != 1 {
		t.Fatalf("ArgMin=%d, want 1", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0=%v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1=%v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("q.5=%v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q.25=%v", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton quantile=%v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile q=%v did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestL1Distance(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 4, 0}
	if got := L1Distance(a, b); !almostEqual(got, (0+2+3)/3.0, 1e-12) {
		t.Errorf("L1=%v", got)
	}
	if L1Distance(nil, nil) != 0 {
		t.Error("L1 of empty must be 0")
	}
	if L1Distance(a, a) != 0 {
		t.Error("L1 self-distance must be 0")
	}
}

func TestL1DistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	L1Distance([]float64{1}, []float64{1, 2})
}

func TestHammingDistance(t *testing.T) {
	a := []int64{1, 2, 3, 4}
	b := []int64{1, 0, 3, 0}
	if got := HammingDistance(a, b); got != 2 {
		t.Errorf("Hamming=%d, want 2", got)
	}
	if HammingDistance(a, a) != 0 {
		t.Error("self Hamming must be 0")
	}
}

func TestIsPeriodic(t *testing.T) {
	xs := []float64{1, 2, 1, 2, 1, 2}
	if !IsPeriodic(xs, 2) {
		t.Error("2-periodic not detected")
	}
	if !IsPeriodic(xs, 4) {
		t.Error("multiples of the period are also periods")
	}
	if IsPeriodic(xs, 3) {
		t.Error("3 is not a period")
	}
	if IsPeriodic(xs, 0) || IsPeriodic(xs, -1) {
		t.Error("non-positive periods must be rejected")
	}
	if !IsPeriodic([]float64{1, 2}, 5) {
		t.Error("short slice is vacuously periodic")
	}
}

func TestFundamentalPeriod(t *testing.T) {
	xs := Repeat([]float64{4, 7, 7}, 10)
	if got := FundamentalPeriod(xs, 10); got != 3 {
		t.Fatalf("fundamental=%d, want 3", got)
	}
	// Aperiodic stream.
	ys := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := FundamentalPeriod(ys, 3); got != 0 {
		t.Fatalf("aperiodic fundamental=%d, want 0", got)
	}
}

func TestFundamentalPeriodInt(t *testing.T) {
	xs := RepeatInt([]int64{0x400, 0x500, 0x600, 0x700, 0x800}, 8)
	if got := FundamentalPeriodInt(xs, 16); got != 5 {
		t.Fatalf("fundamental=%d, want 5", got)
	}
}

// Property: for any non-empty pattern, the cycled stream is periodic with
// the pattern length, and the fundamental divides it.
func TestPropertyFundamentalDivides(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		pat := make([]int64, len(raw))
		for i, v := range raw {
			pat[i] = int64(v % 3)
		}
		xs := RepeatInt(pat, 5)
		if !IsPeriodicInt(xs, len(pat)) {
			return false
		}
		p := FundamentalPeriodInt(xs, len(pat))
		return p >= 1 && len(pat)%p == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: L1Distance is a metric on equal-length vectors: non-negative,
// zero iff equal (for exact values), symmetric, triangle inequality.
func TestPropertyL1IsAMetric(t *testing.T) {
	f := func(a, b, c [6]int8) bool {
		av, bv, cv := make([]float64, 6), make([]float64, 6), make([]float64, 6)
		for i := 0; i < 6; i++ {
			av[i], bv[i], cv[i] = float64(a[i]), float64(b[i]), float64(c[i])
		}
		dab := L1Distance(av, bv)
		dba := L1Distance(bv, av)
		dac := L1Distance(av, cv)
		dcb := L1Distance(cv, bv)
		if dab < 0 || dab != dba {
			return false
		}
		if dab > dac+dcb+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
