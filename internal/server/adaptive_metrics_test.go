package server

import (
	"testing"
	"time"

	"dpd"
)

// TestMetricsAdaptiveSection: /metrics grows an "adaptive" section when
// contention-adaptive placement is enabled — promotion counters advance
// and the hot set names the celebrity key — and omits the section
// entirely on a baseline server.
func TestMetricsAdaptiveSection(t *testing.T) {
	s := newTestServer(t, Config{
		Pool: dpd.PoolConfig{
			Shards:   2,
			Detector: dpd.Config{Window: 32},
			Adaptive: dpd.AdaptiveConfig{
				Enable:         true,
				MaxHot:         4,
				FoldEvery:      2 * time.Millisecond,
				PromoteShare:   0.30,
				DemoteShare:    0.05,
				PromoteAfter:   1,
				DemoteAfter:    1 << 30, // hold promotions for the test's lifetime
				MinFoldSamples: 1,
			},
		},
	})
	defer shutdown(t, s)

	c := dialClient(t, s)
	defer c.close()

	// One celebrity (key 7) dominating a handful of cold keys; keep
	// feeding across coordinator folds until /metrics reports the
	// promotion.
	hot := make([]int64, 256)
	cold := make([]int64, 4)
	for i := range hot {
		hot[i] = int64(i % 5)
	}
	var m MetricsSnapshot
	deadline := time.Now().Add(10 * time.Second)
	for token := uint64(1); ; token++ {
		c.sendEvents(7, hot)
		for k := uint64(0); k < 4; k++ {
			for i := range cold {
				cold[i] = int64((int(token) + i) % 5)
			}
			c.sendEvents(100+k, cold)
		}
		c.barrier(token)
		m = MetricsSnapshot{}
		if code := httpGet(t, s, "/metrics", &m); code != 200 {
			t.Fatalf("GET /metrics = %d", code)
		}
		if m.Adaptive != nil && m.Adaptive.Promotions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion surfaced in /metrics: %+v", m.Adaptive)
		}
		time.Sleep(5 * time.Millisecond)
	}
	a := m.Adaptive
	if !a.Enabled || a.MaxHot != 4 {
		t.Fatalf("adaptive section = %+v", a)
	}
	if a.Folds == 0 {
		t.Fatalf("fold counter never advanced: %+v", a)
	}
	if a.HotStreams != len(a.Hot) {
		t.Fatalf("hot_streams=%d but %d hot entries", a.HotStreams, len(a.Hot))
	}
	found := false
	for _, h := range a.Hot {
		if h.Key == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("celebrity key 7 not in served hot set: %+v", a.Hot)
	}

	// The promoted stream stays queryable through the normal read paths.
	var st streamJSON
	if code := httpGet(t, s, "/streams/7", &st); code != 200 {
		t.Fatalf("GET /streams/7 = %d", code)
	}
	if st.Samples == 0 {
		t.Fatalf("hot stream stat = %+v", st)
	}

	// Baseline server: no adaptive section at all.
	s2 := newTestServer(t, Config{
		Pool: dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}},
	})
	defer shutdown(t, s2)
	var m2 MetricsSnapshot
	if code := httpGet(t, s2, "/metrics", &m2); code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	if m2.Adaptive != nil {
		t.Fatalf("baseline server leaked adaptive section: %+v", m2.Adaptive)
	}
}
