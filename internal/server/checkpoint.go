package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"dpd"
	"dpd/internal/faults"
	"dpd/internal/obs"
)

// Durability loop: the server periodically streams the pool's complete
// state to disk so a restart continues every stream byte-identically.
//
// The discipline, end to end:
//
//   - Writes are atomic: the checkpoint streams into a .tmp file in the
//     same directory, is fsynced, then renamed into place (and the
//     directory fsynced), so a crash mid-write can never leave a
//     half-checkpoint under a valid name.
//   - The pool state is serialized into a reused in-memory buffer first
//     and only then written to disk, so no pool lock is ever held across
//     disk I/O — a wedged disk stalls the checkpoint, never ingest,
//     rebalancing or shutdown.
//   - Checkpoints never queue: WriteCheckpoint try-locks, and a caller
//     finding one already in flight returns ErrCheckpointInFlight
//     (counted as a stall) instead of piling up behind a wedged write.
//   - Files are sequence-numbered (ckpt-000000000042.dpdp); the server
//     keeps the newest CheckpointKeep and prunes the rest, so the disk
//     footprint is bounded and boot always has fallbacks.
//   - Boot sweeps *.tmp orphans (a crash between write and rename), then
//     restores from the newest file whose stream decodes and matches the
//     configured engine; corrupt, truncated or mismatched files are
//     logged with the reason and skipped (counted in restore_fallbacks),
//     falling back to older files and finally to a fresh pool.
//     Durability degrades gracefully instead of refusing to start.
//   - At shutdown a final checkpoint runs after Pool.Close, capturing
//     the fully quiesced state — nothing fed before the drain is lost.
//   - Every filesystem touch goes through the injectable faults.FS, so
//     the crash matrix in failure_test.go can provoke and replay every
//     step of this path.

// ErrCheckpointInFlight is returned by WriteCheckpoint when another
// checkpoint is still running — including one wedged on a hung disk.
// The caller's checkpoint is skipped, never queued.
var ErrCheckpointInFlight = errors.New("server: checkpoint already in flight")

const (
	// checkpointPrefix and checkpointSuffix frame the sequence number in
	// a checkpoint file name.
	checkpointPrefix = "ckpt-"
	checkpointSuffix = ".dpdp"
	// checkpointSeqDigits zero-pads sequence numbers so lexical and
	// numeric order agree for every plausible lifetime.
	checkpointSeqDigits = 12
)

// checkpointName renders the file name of sequence seq.
func checkpointName(seq uint64) string {
	return fmt.Sprintf("%s%0*d%s", checkpointPrefix, checkpointSeqDigits, seq, checkpointSuffix)
}

// parseCheckpointName extracts the sequence number, reporting false for
// names that are not checkpoints (temp files, strangers).
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return 0, false
	}
	mid := name[len(checkpointPrefix) : len(name)-len(checkpointSuffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listCheckpoints returns the sequence numbers present in dir, newest
// first. A missing directory is an empty list, not an error.
func listCheckpoints(fs faults.FS, dir string) ([]uint64, error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseCheckpointName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// sweepTmp removes *.tmp orphans left by a crash between checkpoint
// write and rename. They can never become valid checkpoints (the rename
// is what commits them), so boot clears them and counts the sweep.
func (s *Server) sweepTmp(dir string) {
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, checkpointPrefix) && strings.HasSuffix(name, ".tmp") {
			if s.fs.Remove(filepath.Join(dir, name)) == nil {
				s.metrics.tmpSwept.Add(1)
				s.cfg.Logf("server: swept orphaned checkpoint temp %s", name)
			}
		}
	}
}

// WriteCheckpoint serializes the pool's current state and commits it as
// a new durable checkpoint file, pruning old ones and returning the
// path written. It is what the interval loop and the shutdown path
// call, and is exported so operators (and tests) can force a checkpoint
// at will. Feeding may continue concurrently: Pool.Checkpoint quiesces
// one shard at a time, and the serialized snapshot goes to memory
// first — disk I/O happens strictly outside pool locks. If a checkpoint
// is already in flight (possibly wedged on a bad disk) the call returns
// ErrCheckpointInFlight immediately instead of queueing.
func (s *Server) WriteCheckpoint() (string, error) {
	dir := s.cfg.CheckpointDir
	if dir == "" {
		return "", errors.New("server: no checkpoint directory configured")
	}
	if !s.ckptMu.TryLock() {
		s.metrics.checkpointStalls.Add(1)
		return "", ErrCheckpointInFlight
	}
	defer s.ckptMu.Unlock()
	s.metrics.checkpointInFlight.Store(1)
	defer s.metrics.checkpointInFlight.Store(0)

	// ckptMu is held, so the sequence this attempt will commit is fixed
	// now; every recorder event of the attempt carries it.
	seq := s.metrics.checkpointSeq.Load() + 1
	rec := s.obs.Rec()
	rec.Record(obs.SubCheckpoint, obs.EvCheckpointBegin, seq, 0)
	t0 := time.Now()
	fail := func(err error) (string, error) {
		s.metrics.checkpointErrors.Add(1)
		rec.Record(obs.SubCheckpoint, obs.EvCheckpointError, seq, 0)
		return "", err
	}

	// Capture each connection's acknowledged barrier BEFORE the snapshot
	// begins: everything those tokens cover is already applied, so it is
	// in the snapshot, so the tokens become durable when the file does.
	var marks []DurableMark
	if !s.cfg.ExternalDurability {
		marks = s.CaptureDurableMarks()
	}

	s.ckptBuf.Reset()
	if err := s.pool.Checkpoint(&s.ckptBuf); err != nil {
		return fail(err)
	}

	if err := s.fs.MkdirAll(dir, 0o777); err != nil {
		return fail(err)
	}
	final := filepath.Join(dir, checkpointName(seq))
	tmp := final + ".tmp"
	if err := s.writeCheckpointFile(tmp); err != nil {
		s.fs.Remove(tmp)
		return fail(err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp)
		return fail(err)
	}
	if err := s.fs.SyncDir(dir); err != nil {
		// The rename happened but its durability is unknown: a restart
		// may legitimately see either checkpoint. Report failure so no
		// durable marks are handed out on the strength of this file.
		return fail(err)
	}
	s.metrics.checkpointSeq.Store(seq)
	s.metrics.checkpointsTotal.Add(1)
	s.metrics.checkpointLastNs.Store(time.Now().UnixNano())
	rec.Record(obs.SubCheckpoint, obs.EvCheckpointCommit, seq, uint64(s.ckptBuf.Len()))
	s.obs.CheckpointWrite.Observe(time.Since(t0))
	s.pruneCheckpoints(dir, seq)
	for _, m := range marks {
		m.Durable()
	}
	return final, nil
}

// writeCheckpointFile writes the staged snapshot buffer into path and
// fsyncs it, all through the injectable filesystem.
func (s *Server) writeCheckpointFile(path string) error {
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(s.ckptBuf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pruneCheckpoints removes checkpoints older than the newest
// CheckpointKeep, plus any stale temp files. Best effort: pruning
// failures never fail the checkpoint that just landed.
func (s *Server) pruneCheckpoints(dir string, newest uint64) {
	keep := s.cfg.CheckpointKeep
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		return
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, checkpointPrefix) && name != checkpointName(newest)+".tmp" {
			s.fs.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseCheckpointName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) <= keep {
		return
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs[keep:] {
		s.fs.Remove(filepath.Join(dir, checkpointName(seq)))
	}
}

// restorePool builds the boot pool: the newest checkpoint that decodes
// and matches cfg's detector factory wins; corrupt or mismatched files
// are logged and skipped; no usable checkpoint means a fresh pool. The
// returned seq seeds the checkpoint sequence so a restart never
// overwrites files it just restored from.
func restorePool(fs faults.FS, dir string, cfg dpd.PoolConfig, logf func(string, ...any), m *metrics) (*dpd.Pool, uint64, error) {
	var newest uint64
	if dir != "" {
		seqs, err := listCheckpoints(fs, dir)
		if err != nil {
			return nil, 0, fmt.Errorf("server: scanning checkpoint dir: %w", err)
		}
		if len(seqs) > 0 {
			newest = seqs[0]
		}
		for _, seq := range seqs {
			path := filepath.Join(dir, checkpointName(seq))
			f, err := fs.Open(path)
			if err != nil {
				logf("server: skipping checkpoint %s: %v", path, err)
				m.restoreFallbacks.Add(1)
				continue
			}
			p, err := dpd.RestorePool(f, cfg)
			f.Close()
			if err != nil {
				logf("server: skipping corrupt checkpoint %s: %v", path, err)
				m.restoreFallbacks.Add(1)
				continue
			}
			n := p.Len()
			logf("server: restored %d streams from %s", n, path)
			m.restoredStreams.Store(uint64(n))
			return p, newest, nil
		}
		if len(seqs) > 0 {
			logf("server: no usable checkpoint among %d candidates; starting fresh", len(seqs))
		}
	}
	p, err := dpd.NewPool(cfg)
	if err != nil {
		return nil, 0, err
	}
	return p, newest, nil
}

// checkpointLoop writes a checkpoint every CheckpointEvery until the
// server shuts down (the final shutdown checkpoint is taken by Shutdown
// itself, after the pool has quiesced). A cycle finding the previous
// checkpoint still in flight skips: stalls surface in metrics, not as a
// queue of writers behind a wedged disk.
func (s *Server) checkpointLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := s.WriteCheckpoint(); err != nil && !errors.Is(err, ErrCheckpointInFlight) {
				s.cfg.Logf("server: periodic checkpoint failed: %v", err)
			}
		case <-s.stop:
			return
		}
	}
}
