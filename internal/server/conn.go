package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dpd"
	"dpd/internal/obs"
	"dpd/internal/wire"
)

// feedHook, when non-nil, observes every frame the feeder is about to
// apply. It is a test seam: chaos tests install a panicking hook to
// prove per-connection panic isolation.
var feedHook func(*conn, *Frame)

// closeReason labels why a connection was torn down; each reason feeds
// one disconnect counter.
type closeReason uint8

// Connection teardown reasons.
const (
	reasonEOF closeReason = iota + 1
	reasonReadError
	reasonProtocol
	reasonSlowConsumer
	reasonWriteError
	reasonShutdown
	reasonOverload
	reasonPanic
)

// outMsg is one server→client frame queued to a connection's writer.
type outMsg struct {
	kind    uint8  // KindPong, KindEvent, KindError, KindCursorsReply, KindDurable or KindWrongNode
	token   uint64 // pong/durable token; routing epoch of a wrong-node frame
	key     uint64
	ev      dpd.Event
	code    ErrCode
	retryMs uint64
	msg     string
	cursors []Cursor
	// terminal marks an error frame: the writer flushes it and closes
	// the connection.
	terminal bool
	reason   closeReason
}

// conn is one ingest connection: a reader that decodes frames into a
// bounded ring of reusable Frame slots, a feeder that applies them to
// the pool in order, and a writer that drains the out queue (pongs,
// subscribed events, errors). The ring is the ingest backpressure: when
// the pool is behind, the reader blocks on a free slot, the socket
// fills, and the peer's TCP window closes — no unbounded queue anywhere.
type conn struct {
	srv *Server
	c   net.Conn

	pending chan *Frame // decoded frames awaiting the feeder, in order
	free    chan *Frame // recycled frame slots

	out chan outMsg // server→client queue; bounded, never closed

	done      chan struct{} // closed exactly once by close()
	drain     chan struct{} // closed by handle: writer finishes the queue and exits
	closeOnce sync.Once
	reason    closeReason

	// ackedPing holds the newest acknowledged ping token plus one (0 =
	// never pinged): the feeder stores it only after every earlier frame
	// has been fed, so the checkpointer can read it as "everything up to
	// this barrier is in any snapshot taken from now on".
	ackedPing atomic.Uint64
	// pendingBytes is this connection's share of the pending-memory
	// account (decoded payload bytes queued to the feeder).
	pendingBytes atomic.Int64

	// subKeys remembers this connection's explicit subscription so
	// teardown can unsubscribe precisely; guarded by the server's
	// subscription mutex.
	subKeys []uint64
	subAll  bool
}

// newConn builds the connection state with its frame ring warmed.
func newConn(srv *Server, nc net.Conn) *conn {
	c := &conn{
		srv:     srv,
		c:       nc,
		pending: make(chan *Frame, srv.cfg.PendingBatches),
		free:    make(chan *Frame, srv.cfg.PendingBatches),
		out:     make(chan outMsg, srv.cfg.EventBuffer),
		done:    make(chan struct{}),
		drain:   make(chan struct{}),
	}
	for i := 0; i < srv.cfg.PendingBatches; i++ {
		c.free <- &Frame{}
	}
	return c
}

// close tears the connection down exactly once, recording the reason.
// It is safe from any goroutine, including the publish path (which must
// not take registry locks here — registry cleanup happens in handle).
func (c *conn) close(r closeReason) {
	c.closeOnce.Do(func() {
		c.reason = r
		close(c.done)
		c.c.Close()
	})
}

// send enqueues one message for the writer, giving up when the
// connection is already closing.
func (c *conn) send(m outMsg) {
	select {
	case c.out <- m:
	case <-c.done:
	}
}

// sendEvent enqueues an event frame without ever blocking: a subscriber
// that cannot drain its queue is a slow consumer and is disconnected
// (counted) rather than allowed to stall the shard worker publishing
// the event.
func (c *conn) sendEvent(key uint64, ev *dpd.Event) bool {
	select {
	case c.out <- outMsg{kind: KindEvent, key: key, ev: *ev}:
		return true
	default:
		c.close(reasonSlowConsumer)
		return false
	}
}

// handle runs one connection to completion. It owns the goroutine
// lifecycle: writer and feeder are started here and joined before the
// connection is unregistered.
func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	if !s.admit(nc) {
		return
	}
	c := newConn(s, nc)
	if !s.addConn(c) {
		nc.Close() // lost the race with Shutdown: refuse silently
		return
	}
	s.metrics.connsTotal.Add(1)
	s.metrics.connsActive.Add(1)

	var writerDone, feederDone sync.WaitGroup
	writerDone.Add(1)
	go func() { defer writerDone.Done(); defer c.recoverPanic(); c.writeLoop() }()
	feederDone.Add(1)
	go func() { defer feederDone.Done(); defer c.recoverPanic(); c.feedLoop() }()

	reason := c.runRead()

	// Reader is done: no more pending sends. Close the pending channel
	// so the feeder drains what was already queued and exits; then tell
	// the writer to finish every queued reply (the feeder's last pong,
	// or the terminal error frame) BEFORE the socket is closed — the
	// protocol promises a typed error reply, so teardown must not race
	// the flush that carries it.
	close(c.pending)
	feederDone.Wait()
	close(c.drain)
	writerDone.Wait()
	if reason == 0 {
		reason = reasonProtocol // terminal reply path: writer recorded it
	}
	c.close(reason) // no-op when a reason was already recorded

	// A feeder that panicked mid-drain leaves reservations for frames it
	// never applied; return the residue so the global account stays
	// balanced.
	if r := c.pendingBytes.Load(); r > 0 {
		c.pendingBytes.Add(-r)
		s.metrics.pendingBytes.Add(-r)
	}

	s.removeConn(c)
	s.unsubscribe(c)
	s.metrics.connsActive.Add(-1)
	s.metrics.disconnect(c.reason)
}

// recoverPanic converts a panicking connection goroutine into a counted
// connection teardown: one poisoned connection must never take the
// process (or its sibling connections) down with it.
func (c *conn) recoverPanic() {
	if r := recover(); r != nil {
		c.srv.metrics.panicsRecovered.Add(1)
		c.srv.cfg.Logf("server: recovered connection panic: %v", r)
		c.close(reasonPanic)
	}
}

// runRead runs the read loop under the same panic isolation as the
// feeder and writer, reporting the panic reason to handle.
func (c *conn) runRead() (reason closeReason) {
	defer func() {
		if r := recover(); r != nil {
			c.srv.metrics.panicsRecovered.Add(1)
			c.srv.cfg.Logf("server: recovered connection panic: %v", r)
			c.close(reasonPanic)
			reason = reasonPanic
		}
	}()
	return c.readLoop()
}

// readLoop validates the preamble, then decodes frames into the pending
// ring until EOF, error, or server shutdown. It returns the teardown
// reason, or 0 when a terminal error frame was queued instead (the
// writer records the reason after flushing the reply).
func (c *conn) readLoop() closeReason {
	br := bufio.NewReaderSize(c.c, 64<<10)

	var pre [preambleLen]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return reasonEOF
		}
		return reasonReadError
	}
	if string(pre[:len(PreambleMagic)]) != PreambleMagic || pre[len(PreambleMagic)] != ProtocolVersion {
		c.protoError(protoErrf(CodeBadPreamble, "expected %q version %d", PreambleMagic, ProtocolVersion))
		return 0
	}

	for {
		var f *Frame
		select {
		case f = <-c.free:
		case <-c.done:
			return reasonShutdown
		}
		payload, err := wire.ReadFrame(br, MaxFrame, f.raw)
		if err != nil {
			c.free <- f
			switch {
			case errors.Is(err, io.EOF):
				return reasonEOF
			case errors.Is(err, wire.ErrFrameTooLarge):
				c.protoError(protoErrf(CodeFrameTooLarge, "%v", err))
				return 0
			case errors.Is(err, wire.ErrTruncated), errors.Is(err, io.ErrUnexpectedEOF):
				c.protoError(protoErrf(CodeBadFrame, "%v", err))
				return 0
			default:
				return reasonReadError
			}
		}
		if payload == nil {
			// Zero-length frame: the client's graceful terminator.
			c.free <- f
			return reasonEOF
		}
		size := len(payload)
		f.raw = payload[:cap(payload)] // keep any growth for the next read
		// Strided ingest-latency election BEFORE decode, so an elected
		// frame's sample covers decode plus its wait in the pending ring
		// — the full decode→feed handoff. The stamp must be cleared on
		// non-elected frames: the ring recycles them.
		if c.srv.obs.Ingest.Sampled() {
			f.t0 = time.Now()
		} else {
			f.t0 = time.Time{}
		}
		if err := DecodeFrame(payload, f); err != nil {
			c.free <- f
			var pe *ProtoError
			if !errors.As(err, &pe) {
				pe = protoErrf(CodeBadFrame, "%v", err)
			}
			c.protoError(pe)
			return 0
		}
		if !c.srv.reservePending(c, size) {
			// Pending-memory limit: shed this connection with the typed
			// overload error rather than queue toward OOM. The frame ring
			// bounds one connection structurally; the byte accounts bound
			// the fleet.
			c.free <- f
			c.srv.metrics.overloadSheds.Add(1)
			c.srv.obs.Rec().Record(obs.SubServer, obs.EvOverloadShed, f.Key, shedPending)
			c.send(outMsg{
				kind: KindError, code: CodeOverloaded,
				retryMs:  uint64(c.srv.cfg.RetryAfter / time.Millisecond),
				msg:      "pending-memory limit reached",
				terminal: true, reason: reasonOverload,
			})
			return 0
		}
		f.size = size
		c.srv.metrics.framesTotal.Add(1)
		select {
		case c.pending <- f:
		case <-c.done:
			c.srv.releasePending(c, size)
			return reasonShutdown
		}
	}
}

// protoError replies with a typed error frame (the writer closes the
// connection after flushing it) and records the protocol-error reason.
func (c *conn) protoError(pe *ProtoError) {
	c.send(outMsg{kind: KindError, code: pe.Code, msg: pe.Msg, terminal: true, reason: reasonProtocol})
}

// feedLoop applies decoded frames to the pool in arrival order. Pings
// answer only here, after every earlier frame on the connection has
// been fed — that ordering is the protocol's barrier guarantee. The
// loop runs to the end of the ring even during shutdown: Shutdown joins
// every feeder before closing the pool, so frames already read off the
// wire are applied (and make the final checkpoint) rather than being
// dropped behind an already-sent pong.
func (c *conn) feedLoop() {
	for f := range c.pending {
		if feedHook != nil {
			feedHook(c, f)
		}
		switch f.Kind {
		case KindEventBatch, KindMagnitudeBatch:
			if len(f.Samples) > 0 {
				// The ownership check and the feed are one critical
				// section under the route fence: FeedBarrier (migration,
				// failover promotion) excludes both, so a batch admitted
				// here can never land after its stream was detached.
				c.srv.routeMu.RLock()
				var owner string
				var epoch uint64
				rejected := false
				if oc := c.srv.cfg.OwnerCheck; oc != nil {
					owner, epoch, rejected = oc(f.Key)
					rejected = !rejected
				}
				if !rejected {
					c.srv.pool.FeedBatch(f.Samples)
					c.srv.metrics.batchesTotal.Add(1)
					c.srv.metrics.samplesTotal.Add(uint64(len(f.Samples)))
				}
				c.srv.routeMu.RUnlock()
				if !f.t0.IsZero() {
					c.srv.obs.Ingest.Observe(time.Since(f.t0))
				}
				if rejected {
					c.srv.metrics.wrongNodeRejects.Add(1)
					c.send(outMsg{kind: KindWrongNode, key: f.Key, token: epoch, msg: owner})
				}
			}
		case KindPing:
			c.srv.metrics.pingsTotal.Add(1)
			// Record the barrier before answering it: a checkpoint that
			// captures this mark after the store sees every frame the
			// token covers already applied.
			c.ackedPing.Store(f.Token + 1)
			c.send(outMsg{kind: KindPong, token: f.Token})
			if c.srv.cfg.CheckpointDir == "" && !c.srv.cfg.ExternalDurability {
				// No durability configured: applied IS as durable as this
				// server gets, so durable-ack clients advance on the same
				// barrier. Under ExternalDurability the replication loop
				// owns durable marks instead.
				c.send(outMsg{kind: KindDurable, token: f.Token})
			}
		case KindSubscribe:
			c.srv.subscribe(c, f.Keys)
		case KindCursors:
			cursors := make([]Cursor, len(f.Keys))
			for i, k := range f.Keys {
				cursors[i].Key = k
				if st, ok := c.srv.pool.Stat(k); ok {
					cursors[i].Samples = st.Samples
				}
			}
			c.send(outMsg{kind: KindCursorsReply, cursors: cursors})
		}
		c.srv.releasePending(c, f.size)
		f.size = 0
		c.free <- f
	}
}

// sendDurable enqueues a durable frame without ever blocking: the
// checkpoint path must not wait on a slow consumer, and a dropped
// durable mark only delays window pruning until the next checkpoint.
func (c *conn) sendDurable(token uint64) {
	select {
	case c.out <- outMsg{kind: KindDurable, token: token}:
	case <-c.done:
	default:
	}
}

// writeLoop drains the out queue, batching frames through one buffered
// writer and flushing when the queue goes idle. Every flush runs under
// a write deadline, so a peer that stops reading cannot wedge the
// writer forever — the deadline expires and the connection is torn
// down with a write-error reason. When handle signals drain (reader and
// feeder are finished), the writer flushes what remains and exits —
// that ordering is what guarantees a terminal error frame or final pong
// reaches the wire before the socket closes.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.c, 16<<10)
	var scratch []byte
	for {
		var m outMsg
		select {
		case m = <-c.out:
		default:
			// Queue idle: flush what's buffered, then block for more.
			if !c.flush(bw) {
				return
			}
			select {
			case m = <-c.out:
			case <-c.done:
				c.flush(bw)
				return
			case <-c.drain:
				// Finish whatever is still queued, then exit.
				select {
				case m = <-c.out:
				default:
					c.flush(bw)
					return
				}
			}
		}
		switch m.kind {
		case KindPong:
			scratch = appendPong(scratch[:0], m.token)
		case KindDurable:
			scratch = appendDurable(scratch[:0], m.token)
		case KindEvent:
			scratch = appendEvent(scratch[:0], m.key, &m.ev)
			c.srv.metrics.eventsDelivered.Add(1)
		case KindError:
			scratch = appendError(scratch[:0], m.code, m.retryMs, m.msg)
		case KindCursorsReply:
			scratch = appendCursorsReply(scratch[:0], m.cursors)
		case KindWrongNode:
			scratch = appendWrongNode(scratch[:0], m.key, m.token, m.msg)
		default:
			continue
		}
		// A fresh deadline before every write, not only explicit
		// flushes: bw.Write flushes implicitly once its buffer fills,
		// and that hidden write must be bounded too (and must never run
		// under a stale deadline armed by an idle flush long ago).
		c.armWriteDeadline()
		if _, err := bw.Write(scratch); err != nil {
			c.close(reasonWriteError)
			return
		}
		if m.terminal {
			c.flush(bw)
			c.close(m.reason)
			return
		}
	}
}

// armWriteDeadline starts a fresh write-timeout window.
func (c *conn) armWriteDeadline() {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.c.SetWriteDeadline(time.Now().Add(t))
	}
}

// flush writes the buffer under the configured write deadline,
// reporting false (and closing the connection) on failure.
func (c *conn) flush(bw *bufio.Writer) bool {
	if bw.Buffered() == 0 {
		return true
	}
	c.armWriteDeadline()
	if err := bw.Flush(); err != nil {
		c.close(reasonWriteError)
		return false
	}
	return true
}
