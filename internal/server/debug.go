package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"dpd/internal/obs"
)

// Debug plane: the flight-recorder dump on the query/control listener
// (no new exposure — it reveals stream keys the /streams enumeration
// already serves) and the pprof mux on its own listener, bound only
// when the operator passes -debug-addr.

// defaultEventDump bounds a GET /debug/events response when the caller
// does not say how many events it wants.
const defaultEventDump = 256

// eventsDump is the GET /debug/events response.
type eventsDump struct {
	// Count is len(Events).
	Count int `json:"count"`
	// Dropped is how many recorded events the ring has already
	// overwritten (total recorded minus ring capacity, floored at 0) —
	// nonzero means the dump's history is truncated.
	Dropped uint64 `json:"dropped"`
	// Events is the dump, newest first.
	Events []obs.EventJSON `json:"events"`
}

// handleDebugEvents dumps the flight recorder, newest first: the last
// N cold transitions (promotions, migrations, failovers, checkpoints,
// sheds) the process performed, with nanosecond timestamps and
// per-subsystem sequence numbers for causal ordering.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	n := defaultEventDump
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = parsed
	}
	rec := s.obs.Rec()
	events := rec.Dump(n)
	var dropped uint64
	if total, c := rec.Recorded(), uint64(rec.Cap()); total > c {
		dropped = total - c
	}
	writeJSON(w, http.StatusOK, eventsDump{
		Count:   len(events),
		Dropped: dropped,
		Events:  obs.EventsJSON(events),
	})
}

// debugHandler builds the pprof-only mux served on DebugAddr. It
// mirrors net/http/pprof's DefaultServeMux registrations without ever
// touching the default mux, so importing this package cannot leak
// profiling routes onto an application's own server.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeEventSidecar writes the flight recorder's full dump as JSON next
// to the final checkpoint (path + ".events.json"), through the
// injectable filesystem. Best effort: the sidecar is post-mortem
// context, and failing to write it must never fail a shutdown whose
// checkpoint already committed.
func (s *Server) writeEventSidecar(ckptPath string) {
	events := s.obs.Rec().Dump(s.obs.Rec().Cap())
	if len(events) == 0 {
		return
	}
	body, err := json.MarshalIndent(obs.EventsJSON(events), "", "  ")
	if err != nil {
		return
	}
	path := ckptPath + ".events.json"
	f, err := s.fs.Create(path)
	if err != nil {
		s.cfg.Logf("server: event sidecar %s: %v", path, err)
		return
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		s.cfg.Logf("server: event sidecar %s: %v", path, err)
		return
	}
	if err := f.Close(); err != nil {
		s.cfg.Logf("server: event sidecar %s: %v", path, err)
	}
}
