package server

import (
	"net/http"
	"testing"

	"dpd"
)

// TestDebugEventsEndpoint drives two cold transitions (a rebalance and
// a checkpoint) and reads them back from /debug/events: newest-first
// order, rendered subsystem/kind strings, correct operands, and the n
// query parameter honored.
func TestDebugEventsEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{
		Pool:          dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}},
		CheckpointDir: dir,
	})
	defer shutdown(t, s)

	c := dialClient(t, s)
	defer c.close()
	c.sendEvents(1, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	c.barrier(1)

	resp, err := http.Post("http://"+s.HTTPAddr()+"/rebalance?shards=4", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance: %s", resp.Status)
	}
	if _, err := s.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}

	var dump struct {
		Count   int    `json:"count"`
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			TimeNs    int64  `json:"time_ns"`
			Time      string `json:"time"`
			Subsystem string `json:"subsystem"`
			Seq       uint64 `json:"seq"`
			Kind      string `json:"kind"`
			Key       uint64 `json:"key"`
			Aux       uint64 `json:"aux"`
		} `json:"events"`
	}
	if code := httpGet(t, s, "/debug/events", &dump); code != http.StatusOK {
		t.Fatalf("/debug/events: status %d", code)
	}
	if dump.Count != len(dump.Events) || dump.Count < 3 {
		t.Fatalf("count = %d with %d events, want >= 3 (rebalance + checkpoint begin/commit)", dump.Count, len(dump.Events))
	}
	if dump.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 (ring not full)", dump.Dropped)
	}

	// Newest-first: the ring dump is in reverse record order, so
	// timestamps never increase down the list.
	for i := 1; i < len(dump.Events); i++ {
		if dump.Events[i].TimeNs > dump.Events[i-1].TimeNs {
			t.Errorf("events not newest-first: [%d].time_ns=%d > [%d].time_ns=%d",
				i, dump.Events[i].TimeNs, i-1, dump.Events[i-1].TimeNs)
		}
	}

	// The checkpoint committed last: events[0] must be its commit, with
	// seq-1 operand and a nonzero byte size, preceded (further down) by
	// its begin with the same checkpoint sequence.
	if e := dump.Events[0]; e.Subsystem != "checkpoint" || e.Kind != "checkpoint_commit" || e.Key != 1 || e.Aux == 0 {
		t.Errorf("events[0] = %+v, want checkpoint_commit of seq 1 with nonzero size", e)
	}
	var sawBegin, sawRebalance bool
	for _, e := range dump.Events {
		if e.Subsystem == "checkpoint" && e.Kind == "checkpoint_begin" && e.Key == 1 {
			sawBegin = true
		}
		if e.Subsystem == "pool" && e.Kind == "rebalance" {
			if e.Key != 2 || e.Aux != 4 {
				t.Errorf("rebalance operands = (%d, %d), want (2, 4)", e.Key, e.Aux)
			}
			sawRebalance = true
		}
		if e.Time == "" || e.TimeNs == 0 || e.Seq == 0 {
			t.Errorf("event missing timestamp or seq: %+v", e)
		}
	}
	if !sawBegin || !sawRebalance {
		t.Errorf("missing events: checkpoint_begin=%v rebalance=%v", sawBegin, sawRebalance)
	}

	// n=1 truncates to the single newest event.
	if code := httpGet(t, s, "/debug/events?n=1", &dump); code != http.StatusOK {
		t.Fatalf("/debug/events?n=1: status %d", code)
	}
	if dump.Count != 1 || len(dump.Events) != 1 {
		t.Errorf("n=1 returned %d events", len(dump.Events))
	}

	// A malformed n is a client error, not a 500 or a silent default.
	if code := httpGet(t, s, "/debug/events?n=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("/debug/events?n=bogus: status %d, want 400", code)
	}
}

// TestDebugPlanePprof: -debug-addr exposes the pprof index on its own
// listener, and the plane is absent (no listener) when unset.
func TestDebugPlanePprof(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:      dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 32}},
		DebugAddr: "127.0.0.1:0",
	})
	defer shutdown(t, s)
	if s.DebugAddr() == "" {
		t.Fatal("DebugAddr() empty with DebugAddr configured")
	}
	resp, err := http.Get("http://" + s.DebugAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: %s", resp.Status)
	}

	s2 := newTestServer(t, Config{Pool: dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 32}}})
	defer shutdown(t, s2)
	if s2.DebugAddr() != "" {
		t.Errorf("DebugAddr() = %q without DebugAddr configured, want empty", s2.DebugAddr())
	}
}
