package server

// Failure-domain tests: every scripted crash point in the checkpoint
// path, transient disk errors, orphaned temp sweeping, overload
// admission and pending-memory shedding, wedged-disk stall detection,
// and feeder panic isolation — the server side of the PR's fault
// matrix. The client side (reconnect, cursor resync, exactly-once
// replay) lives in internal/client.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dpd"
	"dpd/internal/faults"
	"dpd/internal/wire"
)

// copyDir clones the regular files of src into a fresh temp dir, so
// each crash-matrix iteration starts from the same seeded checkpoint
// directory.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// statesEqual reports whether two parsed pool checkpoints hold
// byte-identical per-stream engine states.
func statesEqual(a, b map[uint64][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || string(av) != string(bv) {
			return false
		}
	}
	return true
}

// feedTrace drives the deterministic trace segment [from, to) into s
// over one barriered connection, for every stream.
func feedTrace(t *testing.T, s *Server, engine string, streams, batch, from, to int) {
	t.Helper()
	c := dialClient(t, s)
	defer c.close()
	evs := make([]int64, batch)
	mags := make([]float64, batch)
	for t0 := from; t0 < to; t0 += batch {
		for k := 0; k < streams; k++ {
			for i := range evs {
				v := traceValue(uint64(k), t0+i)
				evs[i], mags[i] = v, float64(v)
			}
			if engine == "magnitude" {
				c.sendMagnitudes(uint64(k), mags)
			} else {
				c.sendEvents(uint64(k), evs)
			}
		}
	}
	c.barrier(uint64(to))
}

// refStatesFor runs the trace segment [0, to) through a plain pool and
// returns its per-stream serialized states.
func refStatesFor(t *testing.T, poolCfg dpd.PoolConfig, streams, batch, to int) map[uint64][]byte {
	t.Helper()
	p, err := dpd.NewPool(poolCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var kb []dpd.KeyedSample
	for t0 := 0; t0 < to; t0 += batch {
		for k := 0; k < streams; k++ {
			kb = kb[:0]
			for i := 0; i < batch; i++ {
				v := traceValue(uint64(k), t0+i)
				kb = append(kb, dpd.KeyedSample{Key: uint64(k), Value: v, Magnitude: float64(v)})
			}
			p.FeedBatch(kb)
		}
	}
	var b bytes.Buffer
	if err := p.Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	return parsePoolCheckpoint(t, b.Bytes())
}

// newestCheckpointStates shuts s down (final checkpoint) and parses the
// newest checkpoint file in dir.
func newestCheckpointStates(t *testing.T, s *Server, dir string) map[uint64][]byte {
	t.Helper()
	shutdown(t, s)
	seqs, err := listCheckpoints(faults.OS{}, dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no checkpoint after shutdown: %v (found %d)", err, len(seqs))
	}
	data, err := os.ReadFile(filepath.Join(dir, checkpointName(seqs[0])))
	if err != nil {
		t.Fatal(err)
	}
	return parsePoolCheckpoint(t, data)
}

// TestCheckpointCrashMatrix crashes the checkpoint write path at every
// injectable step — create, write, fsync, close, rename, dir-sync — and
// proves that a restart always lands on exactly one of the two durable
// states (the seeded half-trace checkpoint or the completed full-trace
// one), byte-identical to an uninterrupted pool, for all four engines.
// A crash before the rename must yield the old state (and leave a temp
// orphan for the boot sweep); a crash after the rename must yield the
// new one. Nothing in between is ever observable.
func TestCheckpointCrashMatrix(t *testing.T) {
	const (
		streams = 8
		samples = 256
		batch   = 64
		shards  = 2
	)
	for name, factory := range engineConfigs() {
		t.Run(name, func(t *testing.T) {
			poolCfg := dpd.PoolConfig{Shards: shards, NewDetector: factory}
			refHalf := refStatesFor(t, poolCfg, streams, batch, samples/2)
			refFull := refStatesFor(t, poolCfg, streams, batch, samples)

			// Seed: half the trace, one explicit durable checkpoint, then a
			// crash-style exit (no final checkpoint).
			seedDir := t.TempDir()
			s0 := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: seedDir})
			feedTrace(t, s0, name, streams, batch, 0, samples/2)
			if _, err := s0.WriteCheckpoint(); err != nil {
				t.Fatal(err)
			}
			s0.Abort()

			// Dry run: count the mutating filesystem steps one full-trace
			// checkpoint costs, so the crash matrix below is exhaustive by
			// construction, not by hardcoded step indices.
			dryDir := copyDir(t, seedDir)
			dryInj := faults.NewInjector(faults.OS{}, faults.NeverPlan())
			sD := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: dryDir, FS: dryInj})
			feedTrace(t, sD, name, streams, batch, samples/2, samples)
			if _, err := sD.WriteCheckpoint(); err != nil {
				t.Fatal(err)
			}
			steps := dryInj.Steps()
			sD.Abort()
			if steps < 6 {
				t.Fatalf("checkpoint path took %d mutating steps, expected at least create/write/sync/close/rename/dirsync", steps)
			}

			for crashAt := 0; crashAt < steps; crashAt++ {
				dir := copyDir(t, seedDir)
				plan := faults.NeverPlan()
				plan.Seed = 0xC0FFEE + uint64(crashAt)
				plan.CrashAt = crashAt
				inj := faults.NewInjector(faults.OS{}, plan)
				s1 := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: dir, FS: inj})
				feedTrace(t, s1, name, streams, batch, samples/2, samples)
				if _, err := s1.WriteCheckpoint(); err == nil {
					t.Fatalf("crashAt=%d: checkpoint reported success through a crash", crashAt)
				}
				if !inj.Crashed() {
					t.Fatalf("crashAt=%d: injector never crashed", crashAt)
				}
				s1.Abort()

				tmps := 0
				ents, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range ents {
					if strings.HasSuffix(e.Name(), ".tmp") {
						tmps++
					}
				}

				// Restart on the real filesystem: restore must land on half
				// or full, never a torn hybrid, and must sweep any orphan.
				s2 := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: dir})
				var m MetricsSnapshot
				if code := httpGet(t, s2, "/metrics", &m); code != 200 {
					t.Fatalf("GET /metrics = %d", code)
				}
				if int(m.TmpSwept) != tmps {
					t.Fatalf("crashAt=%d: swept %d temp orphans, crash left %d", crashAt, m.TmpSwept, tmps)
				}
				got := newestCheckpointStates(t, s2, dir)
				half := statesEqual(got, refHalf)
				full := statesEqual(got, refFull)
				if !half && !full {
					t.Fatalf("crashAt=%d: restored state matches neither the pre-crash nor the post-crash checkpoint", crashAt)
				}
				// The rename is the commit point: it is the second-to-last
				// mutating step (dir sync follows). Before it the old state
				// must survive; at or past it the new state must.
				if renameStep := steps - 2; crashAt < renameStep && !half {
					t.Errorf("crashAt=%d (before rename): expected the seeded half-trace state", crashAt)
				} else if crashAt >= renameStep && crashAt >= steps-1 && !full {
					t.Errorf("crashAt=%d (after rename): expected the full-trace state", crashAt)
				}
				if os.RemoveAll(dir) != nil {
					t.Fatal("cleanup failed")
				}
			}
		})
	}
}

// TestCheckpointTransientFailure: a one-shot injected disk-full error
// fails that checkpoint (counted, temp cleaned up), and the very next
// attempt succeeds — transient errors do not wedge the loop.
func TestCheckpointTransientFailure(t *testing.T) {
	dir := t.TempDir()
	plan := faults.NeverPlan()
	plan.FailAt = 2 // the data write: mkdir=0, create=1, write=2
	inj := faults.NewInjector(faults.OS{}, plan)
	s := newTestServer(t, Config{
		Pool:          dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 16}},
		CheckpointDir: dir,
		FS:            inj,
	})
	c := dialClient(t, s)
	c.sendEvents(7, []int64{1, 2, 3, 1, 2, 3})
	c.barrier(1)
	c.close()

	if _, err := s.WriteCheckpoint(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("first checkpoint error = %v, want injected failure", err)
	}
	if _, err := s.WriteCheckpoint(); err != nil {
		t.Fatalf("second checkpoint after transient failure: %v", err)
	}
	var m MetricsSnapshot
	httpGet(t, s, "/metrics", &m)
	if m.CheckpointErrors != 1 || m.CheckpointsTotal != 1 {
		t.Fatalf("errors=%d total=%d, want 1 and 1", m.CheckpointErrors, m.CheckpointsTotal)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("failed attempt leaked temp file %s", e.Name())
		}
	}
	shutdown(t, s)
}

// TestTmpSweepOnBoot: orphaned checkpoint temp files planted in the
// directory are removed during boot and counted in /metrics.
func TestTmpSweepOnBoot(t *testing.T) {
	dir := t.TempDir()
	orphans := []string{
		checkpointName(3) + ".tmp",
		checkpointPrefix + "partial" + ".tmp",
	}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	s := newTestServer(t, Config{
		Pool:          dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 16}},
		CheckpointDir: dir,
	})
	var m MetricsSnapshot
	httpGet(t, s, "/metrics", &m)
	if int(m.TmpSwept) != len(orphans) {
		t.Fatalf("tmp_swept = %d, want %d", m.TmpSwept, len(orphans))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("orphan %s survived the boot sweep", e.Name())
		}
	}
	shutdown(t, s)
}

// readServerFrame decodes one frame from a raw test connection.
func readServerFrame(t *testing.T, c *client) (ServerFrame, error) {
	t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := wire.ReadFrame(c.br, MaxFrame, nil)
	if err != nil {
		return ServerFrame{}, err
	}
	var sf ServerFrame
	if err := DecodeServerFrame(payload, &sf); err != nil {
		t.Fatal(err)
	}
	return sf, nil
}

// TestAdmissionLimit: past MaxConns the server refuses new connections
// with a typed overloaded error carrying the retry-after hint, and
// admits again once a slot frees.
func TestAdmissionLimit(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:       dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 16}},
		MaxConns:   1,
		RetryAfter: 250 * time.Millisecond,
	})
	c1 := dialClient(t, s)
	c1.barrier(1) // proves c1 is admitted and live

	c2 := dialClient(t, s)
	sf, err := readServerFrame(t, c2)
	if err != nil {
		t.Fatalf("rejected conn: %v", err)
	}
	if sf.Kind != KindError || sf.Code != CodeOverloaded {
		t.Fatalf("rejection frame = kind %d code %s, want overloaded error", sf.Kind, sf.Code)
	}
	if sf.RetryAfterMs != 250 {
		t.Fatalf("retry-after hint = %dms, want 250", sf.RetryAfterMs)
	}
	if _, err := readServerFrame(t, c2); err == nil {
		t.Fatal("server kept the rejected connection open")
	}
	c2.close()

	var m MetricsSnapshot
	httpGet(t, s, "/metrics", &m)
	if m.ConnsRejected != 1 || m.OverloadSheds == 0 {
		t.Fatalf("conns_rejected=%d overload_sheds=%d, want 1 and >0", m.ConnsRejected, m.OverloadSheds)
	}

	// Free the slot; admission must recover.
	c1.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3 := dialClient(t, s)
		c3.buf = c3.enc.AppendPing(c3.buf[:0], 9)
		if _, err := c3.bw.Write(c3.buf); err != nil {
			t.Fatal(err)
		}
		if err := c3.bw.Flush(); err != nil {
			t.Fatal(err)
		}
		sf, err := readServerFrame(t, c3)
		c3.close()
		if err == nil && sf.Kind == KindPong {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never recovered after the slot freed (last: %+v, %v)", sf, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	shutdown(t, s)
}

// TestPendingMemoryShed: a batch that would exceed the global pending
// memory limit sheds the connection with a typed overloaded error
// instead of queueing unbounded.
func TestPendingMemoryShed(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:            dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 16}},
		MaxPendingBytes: 64,
	})
	c := dialClient(t, s)
	big := make([]int64, 512)
	for i := range big {
		big[i] = int64(i) * 1_000_000 // wide varints: payload far beyond 64B
	}
	c.sendEvents(1, big)
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	sf, err := readServerFrame(t, c)
	if err != nil {
		t.Fatalf("shed conn: %v", err)
	}
	if sf.Kind != KindError || sf.Code != CodeOverloaded {
		t.Fatalf("shed frame = kind %d code %s, want overloaded error", sf.Kind, sf.Code)
	}
	if !strings.Contains(sf.Msg, "pending-memory") {
		t.Fatalf("shed message %q does not name the pending-memory limit", sf.Msg)
	}
	c.close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var m MetricsSnapshot
		httpGet(t, s, "/metrics", &m)
		if m.Disconnects.Overload == 1 && m.PendingBytes == 0 {
			if m.OverloadSheds == 0 {
				t.Fatal("overload_sheds not counted")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overload disconnect never recorded: %+v pending=%d", m.Disconnects, m.PendingBytes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutdown(t, s)
}

// TestCheckpointStallDetection: a checkpoint wedged on a hanging disk
// write must not block ingest, and concurrent attempts fail fast with
// ErrCheckpointInFlight (counted as stalls) instead of queueing behind
// the wedge.
func TestCheckpointStallDetection(t *testing.T) {
	dir := t.TempDir()
	plan := faults.NeverPlan()
	plan.HangAt = 2 // the data write hangs: mkdir=0, create=1, write=2
	inj := faults.NewInjector(faults.OS{}, plan)
	s := newTestServer(t, Config{
		Pool:          dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 16}},
		CheckpointDir: dir,
		FS:            inj,
	})
	c := dialClient(t, s)
	c.sendEvents(1, []int64{1, 2, 3, 4})
	c.barrier(1)

	done := make(chan error, 1)
	go func() {
		_, err := s.WriteCheckpoint()
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var m MetricsSnapshot
		httpGet(t, s, "/metrics", &m)
		if m.CheckpointInFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never reached the wedged write")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Ingest must keep flowing around the wedged checkpoint.
	c.sendEvents(1, []int64{1, 2, 3, 4})
	c.barrier(2)
	c.close()

	if _, err := s.WriteCheckpoint(); !errors.Is(err, ErrCheckpointInFlight) {
		t.Fatalf("concurrent checkpoint error = %v, want ErrCheckpointInFlight", err)
	}
	var m MetricsSnapshot
	httpGet(t, s, "/metrics", &m)
	if m.CheckpointStalls != 1 {
		t.Fatalf("checkpoint_stalls = %d, want 1", m.CheckpointStalls)
	}

	inj.Release()
	if err := <-done; err != nil {
		t.Fatalf("released checkpoint failed: %v", err)
	}
	if seqs, err := listCheckpoints(faults.OS{}, dir); err != nil || len(seqs) != 1 {
		t.Fatalf("want exactly one durable checkpoint after release, got %d (%v)", len(seqs), err)
	}
	shutdown(t, s)
}

// TestPanicIsolation: a panic in one connection's feeder tears down
// that connection only — counted, logged, and invisible to every other
// client.
func TestPanicIsolation(t *testing.T) {
	const poisonKey = 0xDEAD
	feedHook = func(c *conn, f *Frame) {
		if f.Kind == KindEventBatch && f.Key == poisonKey {
			panic("injected feeder panic")
		}
	}
	s := newTestServer(t, Config{Pool: dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 16}}})

	c1 := dialClient(t, s)
	c1.sendEvents(poisonKey, []int64{1, 2, 3})
	if err := c1.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var m MetricsSnapshot
		httpGet(t, s, "/metrics", &m)
		if m.PanicsRecovered == 1 && m.Disconnects.Panic == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("panic never isolated: %+v", m.Disconnects)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c1.close()

	// The server survives and serves other connections.
	c2 := dialClient(t, s)
	c2.sendEvents(1, []int64{5, 6, 7})
	c2.barrier(1)
	c2.close()

	shutdown(t, s)
	feedHook = nil
}
