package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"dpd"
)

// HTTP query/control plane. Everything is JSON; nothing here sits on
// the ingest hot path — snapshots lock one shard at a time, so a
// dashboard polling /streams does not stall feeders.
//
//	GET  /healthz                    liveness + stream count
//	GET  /metrics                    counter snapshot (metrics.go)
//	GET  /metrics?format=prometheus  the same counters in Prometheus text
//	                                 exposition (prom.go)
//	GET  /streams                    paged enumeration: ?after=K&limit=N
//	GET  /streams/{key}              one stream's unified Stat (incl. prediction)
//	GET  /debug/events?n=K           flight-recorder dump, newest first (debug.go)
//	POST /rebalance?shards=N         live shard-count change (Pool.Rebalance)

// streamJSON is one stream in a query response: the key plus the
// unified Stat with its existing JSON field names.
type streamJSON struct {
	// Key identifies the stream.
	Key uint64 `json:"key"`
	dpd.Stat
}

// streamsPage is the GET /streams response.
type streamsPage struct {
	// Streams is the page, in ascending key order.
	Streams []streamJSON `json:"streams"`
	// Count is len(Streams).
	Count int `json:"count"`
	// NextAfter is the cursor for the next page; present only when the
	// page was full (more streams may follow).
	NextAfter *uint64 `json:"next_after,omitempty"`
}

// defaultPageLimit and maxPageLimit bound GET /streams pages.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// httpHandler builds the query/control mux. An embedder's RegisterHTTP
// hook (the cluster node's /cluster/* routes) mounts first, onto the
// same mux and listener.
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	if s.cfg.RegisterHTTP != nil {
		s.cfg.RegisterHTTP(mux)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /streams", s.handleStreams)
	mux.HandleFunc("GET /streams/{key}", s.handleStream)
	mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	mux.HandleFunc("POST /rebalance", s.handleRebalance)
	return mux
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"streams":        s.pool.Len(),
	})
}

// handleMetrics reports the counter snapshot plus pool-derived gauges,
// as JSON by default or Prometheus text exposition with
// ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(time.Now())
	snap.Streams = s.pool.Len()
	snap.Shards = s.pool.Shards()
	snap.ShardOccupancy = s.pool.ShardLens(nil)
	snap.Evicted = s.pool.Evicted()
	if s.cfg.ClusterMetrics != nil {
		snap.Cluster = s.cfg.ClusterMetrics()
	}
	if ast := s.pool.AdaptiveStats(); ast.Enabled {
		snap.Adaptive = &ast
	}
	snap.Latency = &LatencyStats{
		Ingest:          s.obs.Ingest.Stat(),
		FeedBatch:       s.obs.FeedBatch.Stat(),
		CheckpointWrite: s.obs.CheckpointWrite.Stat(),
		MigrationPause:  s.obs.MigrationPause.Stat(),
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(appendPrometheus(nil, &snap))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleStreams serves the paged pool enumeration.
func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from := uint64(0)
	if v := q.Get("after"); v != "" {
		after, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "after must be an unsigned integer")
			return
		}
		if after == ^uint64(0) {
			writeJSON(w, http.StatusOK, streamsPage{Streams: []streamJSON{}})
			return
		}
		from = after + 1
	}
	limit := defaultPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		if n > maxPageLimit {
			n = maxPageLimit
		}
		limit = n
	}
	stats, next, more := s.pool.SnapshotPage(from, limit, nil)
	page := streamsPage{Streams: make([]streamJSON, len(stats)), Count: len(stats)}
	for i, st := range stats {
		page.Streams[i] = streamJSON{Key: st.Key, Stat: st.Stat}
	}
	if more {
		// The cursor comes from the key selection, not the page length,
		// so an eviction-shortened page still continues the enumeration.
		after := next - 1
		page.NextAfter = &after
	}
	writeJSON(w, http.StatusOK, page)
}

// handleStream serves one stream's unified Stat and prediction.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.PathValue("key"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "stream key must be an unsigned integer")
		return
	}
	st, ok := s.pool.Stat(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	writeJSON(w, http.StatusOK, streamJSON{Key: st.Key, Stat: st.Stat})
}

// handleRebalance drives Pool.Rebalance from the control plane.
func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("shards"))
	if err != nil || n < 1 {
		httpError(w, http.StatusBadRequest, "shards must be a positive integer")
		return
	}
	if err := s.pool.Rebalance(n); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.metrics.rebalancesApplied.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":          s.pool.Shards(),
		"shard_occupancy": s.pool.ShardLens(nil),
	})
}
