package server

import (
	"sync"
	"sync/atomic"
	"time"

	"dpd"
	"dpd/internal/obs"
)

// metrics is the server's counter set: plain atomics, expvar-style, no
// dependencies. Ingest-path counters are touched per frame (not per
// sample), so the cost of observability is amortized over the batch.
type metrics struct {
	start time.Time

	connsTotal    atomic.Uint64
	connsActive   atomic.Int64
	connsRejected atomic.Uint64 // refused at admission (MaxConns)

	framesTotal  atomic.Uint64
	batchesTotal atomic.Uint64
	samplesTotal atomic.Uint64
	pingsTotal   atomic.Uint64

	eventsDelivered atomic.Uint64

	// wrongNodeRejects counts batch frames refused by the cluster
	// ownership check (wrong-node frames sent).
	wrongNodeRejects atomic.Uint64

	// Overload protection: sheds counts every overloaded error frame
	// sent (admission rejects plus pending-memory disconnects);
	// pendingBytes is the live global pending-memory account;
	// panicsRecovered counts connection goroutines saved by isolation.
	overloadSheds   atomic.Uint64
	pendingBytes    atomic.Int64
	panicsRecovered atomic.Uint64

	// Disconnect reasons: every connection teardown increments exactly
	// one of these, so their sum tracks connsTotal as connections drain.
	disconnectEOF      atomic.Uint64
	disconnectRead     atomic.Uint64
	disconnectProto    atomic.Uint64
	disconnectSlow     atomic.Uint64
	disconnectWrite    atomic.Uint64
	disconnectShutdown atomic.Uint64
	disconnectOverload atomic.Uint64
	disconnectPanic    atomic.Uint64
	disconnectOther    atomic.Uint64 // unknown closeReason (code drift guard)

	checkpointsTotal   atomic.Uint64
	checkpointErrors   atomic.Uint64
	checkpointSeq      atomic.Uint64
	checkpointLastNs   atomic.Int64  // UnixNano of the newest durable checkpoint, 0 = never
	checkpointStalls   atomic.Uint64 // WriteCheckpoint calls skipped because one was in flight
	checkpointInFlight atomic.Int64  // 1 while a checkpoint is running (stall detector)
	tmpSwept           atomic.Uint64 // orphaned .tmp files removed at boot
	restoredStreams    atomic.Uint64
	restoreFallbacks   atomic.Uint64 // corrupt/unreadable checkpoints skipped at boot
	rebalancesApplied  atomic.Uint64

	// rate computes ingest samples/s between consecutive /metrics
	// scrapes (the first scrape reports the lifetime average). The
	// total-samples read and the prev-swap happen together under rateMu
	// — one atomic snapshot-and-reset — so concurrent scrapes each see
	// a disjoint [prev, total] interval and their rates never
	// double-count or drop a sample run.
	rateMu      sync.Mutex
	ratePrev    uint64
	ratePrevAt  time.Time
	rateHasPrev bool
}

// DisconnectCounts breaks down connection teardowns by reason in the
// /metrics payload.
type DisconnectCounts struct {
	// EOF: the client finished cleanly (terminator frame or socket EOF).
	EOF uint64 `json:"eof"`
	// ReadError: the socket failed mid-frame.
	ReadError uint64 `json:"read_error"`
	// ProtocolError: the client violated the protocol and was sent a
	// typed error frame.
	ProtocolError uint64 `json:"protocol_error"`
	// SlowConsumer: a subscriber could not drain its event queue.
	SlowConsumer uint64 `json:"slow_consumer"`
	// WriteError: writing to the client failed (including write
	// timeouts on a wedged socket).
	WriteError uint64 `json:"write_error"`
	// Shutdown: the server closed the connection while draining.
	Shutdown uint64 `json:"shutdown"`
	// Overload: the connection was shed by pending-memory accounting.
	Overload uint64 `json:"overload"`
	// Panic: a connection goroutine panicked and was isolated.
	Panic uint64 `json:"panic"`
	// Other: a closeReason this switch does not know. Permanently 0 in a
	// correct build — a nonzero value means a new reason was added
	// without a counter, and the teardown is counted here instead of
	// being silently dropped.
	Other uint64 `json:"other"`
}

// MetricsSnapshot is the /metrics payload: one consistent-enough read
// of every counter (individual fields are atomic; the set is not a
// single instant, which is the usual metrics contract).
type MetricsSnapshot struct {
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// ConnsActive is the number of live ingest connections.
	ConnsActive int64 `json:"conns_active"`
	// ConnsTotal counts every ingest connection ever accepted.
	ConnsTotal uint64 `json:"conns_total"`
	// ConnsRejected counts connections refused at admission (MaxConns).
	ConnsRejected uint64 `json:"conns_rejected"`
	// OverloadSheds counts overloaded error frames sent (admission
	// rejects plus pending-memory disconnects).
	OverloadSheds uint64 `json:"overload_sheds"`
	// PendingBytes is the decoded payload bytes currently queued to
	// feeders across all connections (the overload account).
	PendingBytes int64 `json:"pending_bytes"`
	// PanicsRecovered counts connection goroutines that panicked and
	// were isolated instead of taking the process down.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// FramesTotal counts decoded client frames of every kind.
	FramesTotal uint64 `json:"frames_total"`
	// BatchesTotal counts batch frames fed to the pool.
	BatchesTotal uint64 `json:"batches_total"`
	// SamplesTotal counts samples fed to the pool over the network.
	SamplesTotal uint64 `json:"samples_total"`
	// PingsTotal counts ping barriers served.
	PingsTotal uint64 `json:"pings_total"`
	// IngestRate is samples/s since the previous /metrics scrape (the
	// first scrape reports the lifetime average).
	IngestRate float64 `json:"ingest_rate_per_sec"`
	// EventsDelivered counts event frames queued to subscribers.
	EventsDelivered uint64 `json:"events_delivered"`
	// Disconnects breaks down teardowns by reason.
	Disconnects DisconnectCounts `json:"disconnects"`
	// Streams is the number of live streams in the pool.
	Streams int `json:"streams"`
	// Shards is the pool's current shard count.
	Shards int `json:"shards"`
	// ShardOccupancy is the per-shard live-stream count (hash skew view).
	ShardOccupancy []int `json:"shard_occupancy"`
	// Evicted is the pool's lifetime idle-eviction total.
	Evicted uint64 `json:"evicted"`
	// CheckpointsTotal counts durable checkpoints written.
	CheckpointsTotal uint64 `json:"checkpoints_total"`
	// CheckpointErrors counts failed checkpoint attempts.
	CheckpointErrors uint64 `json:"checkpoint_errors"`
	// CheckpointSeq is the sequence number of the newest durable
	// checkpoint (0 = none yet).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointAgeSeconds is the age of the newest durable checkpoint;
	// -1 when none has been written.
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds"`
	// CheckpointStalls counts checkpoint attempts skipped because the
	// previous one was still in flight — the wedged-disk detector.
	CheckpointStalls uint64 `json:"checkpoint_stalls"`
	// CheckpointInFlight is 1 while a checkpoint is being written.
	CheckpointInFlight int64 `json:"checkpoint_in_flight"`
	// TmpSwept counts orphaned checkpoint temp files removed at boot.
	TmpSwept uint64 `json:"tmp_swept"`
	// RestoredStreams is how many streams boot restored from disk.
	RestoredStreams uint64 `json:"restored_streams"`
	// RestoreFallbacks is how many corrupt or unreadable checkpoint
	// files boot skipped before finding a valid one (or giving up).
	RestoreFallbacks uint64 `json:"restore_fallbacks"`
	// RebalancesApplied counts successful POST /rebalance operations.
	RebalancesApplied uint64 `json:"rebalances_applied"`
	// WrongNodeRejects counts batches refused by the cluster ownership
	// check; always 0 outside cluster mode.
	WrongNodeRejects uint64 `json:"wrong_node_rejects"`
	// Cluster is the per-node cluster section (epoch, streams owned,
	// migrations in/out, follower lag) supplied by Config.ClusterMetrics;
	// absent outside cluster mode.
	Cluster *dpd.ClusterNodeMetrics `json:"cluster,omitempty"`
	// Adaptive is the contention-adaptive placement section (promotion/
	// demotion counters, fold count, current hot set with per-stream feed
	// rates); absent when PoolConfig.Adaptive is disabled.
	Adaptive *dpd.AdaptiveStats `json:"adaptive,omitempty"`
	// Latency is the server-side latency section: sampled histograms
	// from the ingest, feed, checkpoint and migration sites, reported as
	// quantiles. Always present; sites that never fired report count 0.
	Latency *LatencyStats `json:"latency,omitempty"`
}

// LatencyStats is the /metrics latency section: per-site quantile
// summaries of the observability core's sampled histograms.
type LatencyStats struct {
	// Ingest is decode→feed-handoff latency per sampled batch frame.
	Ingest obs.HistStat `json:"ingest"`
	// FeedBatch is Pool.FeedBatch duration per sampled call.
	FeedBatch obs.HistStat `json:"feed_batch"`
	// CheckpointWrite is the full WriteCheckpoint duration (capture,
	// serialize, fsync, rename).
	CheckpointWrite obs.HistStat `json:"checkpoint_write"`
	// MigrationPause is the fence→flip feed-pause window of one live
	// cross-node migration.
	MigrationPause obs.HistStat `json:"migration_pause"`
}

// snapshot assembles the exported view; pool-derived fields are filled
// by the caller (http.go), which owns the pool reference.
func (m *metrics) snapshot(now time.Time) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds:   now.Sub(m.start).Seconds(),
		ConnsActive:     m.connsActive.Load(),
		ConnsTotal:      m.connsTotal.Load(),
		ConnsRejected:   m.connsRejected.Load(),
		OverloadSheds:   m.overloadSheds.Load(),
		PendingBytes:    m.pendingBytes.Load(),
		PanicsRecovered: m.panicsRecovered.Load(),
		FramesTotal:     m.framesTotal.Load(),
		BatchesTotal:    m.batchesTotal.Load(),
		SamplesTotal:    m.samplesTotal.Load(),
		PingsTotal:      m.pingsTotal.Load(),
		EventsDelivered: m.eventsDelivered.Load(),
		Disconnects: DisconnectCounts{
			EOF:           m.disconnectEOF.Load(),
			ReadError:     m.disconnectRead.Load(),
			ProtocolError: m.disconnectProto.Load(),
			SlowConsumer:  m.disconnectSlow.Load(),
			WriteError:    m.disconnectWrite.Load(),
			Shutdown:      m.disconnectShutdown.Load(),
			Overload:      m.disconnectOverload.Load(),
			Panic:         m.disconnectPanic.Load(),
			Other:         m.disconnectOther.Load(),
		},
		CheckpointsTotal:     m.checkpointsTotal.Load(),
		CheckpointErrors:     m.checkpointErrors.Load(),
		CheckpointSeq:        m.checkpointSeq.Load(),
		CheckpointAgeSeconds: -1,
		CheckpointStalls:     m.checkpointStalls.Load(),
		CheckpointInFlight:   m.checkpointInFlight.Load(),
		TmpSwept:             m.tmpSwept.Load(),
		RestoredStreams:      m.restoredStreams.Load(),
		RestoreFallbacks:     m.restoreFallbacks.Load(),
		RebalancesApplied:    m.rebalancesApplied.Load(),
		WrongNodeRejects:     m.wrongNodeRejects.Load(),
	}
	if ns := m.checkpointLastNs.Load(); ns != 0 {
		s.CheckpointAgeSeconds = now.Sub(time.Unix(0, ns)).Seconds()
	}

	// Snapshot-and-reset atomically: the counter is read INSIDE the
	// critical section, so two concurrent scrapes cannot interleave a
	// stale total with a fresher prev (which would compute a wrapped,
	// astronomically wrong rate). SamplesTotal in the payload is the
	// same read, keeping the rate and the total it was derived from
	// consistent with each other.
	m.rateMu.Lock()
	total := m.samplesTotal.Load()
	s.SamplesTotal = total
	if m.rateHasPrev {
		if dt := now.Sub(m.ratePrevAt).Seconds(); dt > 0 {
			s.IngestRate = float64(total-m.ratePrev) / dt
		}
	} else if up := s.UptimeSeconds; up > 0 {
		s.IngestRate = float64(total) / up
	}
	m.ratePrev, m.ratePrevAt, m.rateHasPrev = total, now, true
	m.rateMu.Unlock()
	return s
}

// disconnect records one teardown under its reason counter.
func (m *metrics) disconnect(r closeReason) {
	switch r {
	case reasonEOF:
		m.disconnectEOF.Add(1)
	case reasonReadError:
		m.disconnectRead.Add(1)
	case reasonProtocol:
		m.disconnectProto.Add(1)
	case reasonSlowConsumer:
		m.disconnectSlow.Add(1)
	case reasonWriteError:
		m.disconnectWrite.Add(1)
	case reasonShutdown:
		m.disconnectShutdown.Add(1)
	case reasonOverload:
		m.disconnectOverload.Add(1)
	case reasonPanic:
		m.disconnectPanic.Add(1)
	default:
		m.disconnectOther.Add(1)
	}
}
