package server

import (
	"strconv"

	"dpd/internal/obs"
)

// Prometheus text exposition of the /metrics snapshot (prom.go renders;
// obs/prom.go owns the line formatting). Every JSON counter has a
// Prometheus sample under a stable dpd_-prefixed name: counters carry
// the conventional _total suffix, durations are seconds, and the
// latency section renders as summary families with p50/p99/p999
// quantile labels. Names are part of the server's interface — the
// golden-file test (prom_test.go) pins them, and renaming one is a
// breaking change for every dashboard scraping it.

// appendPrometheus renders snap as Prometheus text exposition 0.0.4
// onto b. Output for a fixed snapshot is byte-stable: families appear
// in the fixed order below, and floats use the shortest round-trippable
// form.
func appendPrometheus(b []byte, snap *MetricsSnapshot) []byte {
	b = obs.AppendPromGauge(b, "dpd_uptime_seconds", snap.UptimeSeconds)
	b = obs.AppendPromGauge(b, "dpd_conns_active", float64(snap.ConnsActive))
	b = obs.AppendPromCounter(b, "dpd_conns_total", snap.ConnsTotal)
	b = obs.AppendPromCounter(b, "dpd_conns_rejected_total", snap.ConnsRejected)
	b = obs.AppendPromCounter(b, "dpd_overload_sheds_total", snap.OverloadSheds)
	b = obs.AppendPromGauge(b, "dpd_pending_bytes", float64(snap.PendingBytes))
	b = obs.AppendPromCounter(b, "dpd_panics_recovered_total", snap.PanicsRecovered)
	b = obs.AppendPromCounter(b, "dpd_frames_total", snap.FramesTotal)
	b = obs.AppendPromCounter(b, "dpd_batches_total", snap.BatchesTotal)
	b = obs.AppendPromCounter(b, "dpd_samples_total", snap.SamplesTotal)
	b = obs.AppendPromCounter(b, "dpd_pings_total", snap.PingsTotal)
	b = obs.AppendPromGauge(b, "dpd_ingest_rate_per_sec", snap.IngestRate)
	b = obs.AppendPromCounter(b, "dpd_events_delivered_total", snap.EventsDelivered)

	b = obs.AppendPromType(b, "dpd_disconnects_total", "counter")
	d := &snap.Disconnects
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "eof", float64(d.EOF))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "read_error", float64(d.ReadError))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "protocol_error", float64(d.ProtocolError))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "slow_consumer", float64(d.SlowConsumer))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "write_error", float64(d.WriteError))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "shutdown", float64(d.Shutdown))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "overload", float64(d.Overload))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "panic", float64(d.Panic))
	b = obs.AppendPromLabeled(b, "dpd_disconnects_total", "reason", "other", float64(d.Other))

	b = obs.AppendPromGauge(b, "dpd_streams", float64(snap.Streams))
	b = obs.AppendPromGauge(b, "dpd_shards", float64(snap.Shards))
	b = obs.AppendPromType(b, "dpd_shard_streams", "gauge")
	for i, n := range snap.ShardOccupancy {
		b = obs.AppendPromLabeled(b, "dpd_shard_streams", "shard", strconv.Itoa(i), float64(n))
	}
	b = obs.AppendPromCounter(b, "dpd_evicted_total", snap.Evicted)

	b = obs.AppendPromCounter(b, "dpd_checkpoints_total", snap.CheckpointsTotal)
	b = obs.AppendPromCounter(b, "dpd_checkpoint_errors_total", snap.CheckpointErrors)
	b = obs.AppendPromGauge(b, "dpd_checkpoint_seq", float64(snap.CheckpointSeq))
	b = obs.AppendPromGauge(b, "dpd_checkpoint_age_seconds", snap.CheckpointAgeSeconds)
	b = obs.AppendPromCounter(b, "dpd_checkpoint_stalls_total", snap.CheckpointStalls)
	b = obs.AppendPromGauge(b, "dpd_checkpoint_in_flight", float64(snap.CheckpointInFlight))
	b = obs.AppendPromCounter(b, "dpd_tmp_swept_total", snap.TmpSwept)
	b = obs.AppendPromGauge(b, "dpd_restored_streams", float64(snap.RestoredStreams))
	b = obs.AppendPromCounter(b, "dpd_restore_fallbacks_total", snap.RestoreFallbacks)
	b = obs.AppendPromCounter(b, "dpd_rebalances_applied_total", snap.RebalancesApplied)
	b = obs.AppendPromCounter(b, "dpd_wrong_node_rejects_total", snap.WrongNodeRejects)

	if c := snap.Cluster; c != nil {
		b = obs.AppendPromGauge(b, "dpd_cluster_epoch", float64(c.Epoch))
		b = obs.AppendPromGauge(b, "dpd_cluster_members", float64(c.Members))
		b = obs.AppendPromGauge(b, "dpd_cluster_streams_owned", float64(c.StreamsOwned))
		b = obs.AppendPromGauge(b, "dpd_cluster_replica_streams", float64(c.ReplicaStreams))
		b = obs.AppendPromCounter(b, "dpd_cluster_migrations_in_total", c.MigrationsIn)
		b = obs.AppendPromCounter(b, "dpd_cluster_migrations_out_total", c.MigrationsOut)
		b = obs.AppendPromCounter(b, "dpd_cluster_promoted_streams_total", c.PromotedStreams)
		b = obs.AppendPromCounter(b, "dpd_cluster_replication_rounds_total", c.ReplicationRounds)
		b = obs.AppendPromCounter(b, "dpd_cluster_replication_errors_total", c.ReplicationErrors)
		b = obs.AppendPromGauge(b, "dpd_cluster_follower_lag_frames", float64(c.FollowerLagFrames))
		b = obs.AppendPromGauge(b, "dpd_cluster_pending_durable_marks", float64(c.PendingDurableMarks))
	}

	if a := snap.Adaptive; a != nil {
		b = obs.AppendPromGauge(b, "dpd_adaptive_max_hot", float64(a.MaxHot))
		b = obs.AppendPromGauge(b, "dpd_adaptive_hot_streams", float64(a.HotStreams))
		b = obs.AppendPromCounter(b, "dpd_adaptive_promotions_total", a.Promotions)
		b = obs.AppendPromCounter(b, "dpd_adaptive_demotions_total", a.Demotions)
		b = obs.AppendPromCounter(b, "dpd_adaptive_folds_total", a.Folds)
	}

	if l := snap.Latency; l != nil {
		b = obs.AppendPromSummary(b, "dpd_ingest_latency_seconds", l.Ingest)
		b = obs.AppendPromSummary(b, "dpd_feed_batch_latency_seconds", l.FeedBatch)
		b = obs.AppendPromSummary(b, "dpd_checkpoint_write_seconds", l.CheckpointWrite)
		b = obs.AppendPromSummary(b, "dpd_migration_pause_seconds", l.MigrationPause)
	}
	return b
}
