package server

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dpd"
	"dpd/internal/obs"
)

// promLine matches one Prometheus text-exposition 0.0.4 line: a # TYPE
// header, or a sample `name[{label="value"}] number`.
var promLine = regexp.MustCompile(`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"\})? [-+]?([0-9.e+-]+|NaN|Inf))$`)

// fixedSnapshot returns a fully-populated deterministic snapshot: every
// section present, every field nonzero where it matters, so the golden
// file pins the complete name set.
func fixedSnapshot() MetricsSnapshot {
	return MetricsSnapshot{
		UptimeSeconds:   12.5,
		ConnsActive:     3,
		ConnsTotal:      10,
		ConnsRejected:   1,
		OverloadSheds:   2,
		PendingBytes:    4096,
		PanicsRecovered: 1,
		FramesTotal:     1000,
		BatchesTotal:    900,
		SamplesTotal:    230400,
		PingsTotal:      50,
		IngestRate:      18432.5,
		EventsDelivered: 77,
		Disconnects: DisconnectCounts{
			EOF: 5, ReadError: 1, ProtocolError: 2, SlowConsumer: 1,
			WriteError: 1, Shutdown: 3, Overload: 2, Panic: 1, Other: 1,
		},
		Streams:              512,
		Shards:               2,
		ShardOccupancy:       []int{300, 212},
		Evicted:              9,
		CheckpointsTotal:     4,
		CheckpointErrors:     1,
		CheckpointSeq:        4,
		CheckpointAgeSeconds: 2.25,
		CheckpointStalls:     1,
		CheckpointInFlight:   0,
		TmpSwept:             1,
		RestoredStreams:      256,
		RestoreFallbacks:     1,
		RebalancesApplied:    2,
		WrongNodeRejects:     6,
		Cluster: &dpd.ClusterNodeMetrics{
			Self: "n1", Epoch: 7, Members: 3, StreamsOwned: 512,
			ReplicaStreams: 170, MigrationsIn: 2, MigrationsOut: 3,
			PromotedStreams: 1, ReplicationRounds: 40, ReplicationErrors: 1,
			FollowerLagFrames: 12, PendingDurableMarks: 2,
		},
		Adaptive: &dpd.AdaptiveStats{
			Enabled: true, MaxHot: 4, HotStreams: 2,
			Promotions: 5, Demotions: 3, Folds: 100,
		},
		Latency: &LatencyStats{
			Ingest:          obs.HistStat{Count: 125, SampleEvery: 8, P50Ns: 1500, P99Ns: 9000, P999Ns: 15000, MaxNs: 20000, MeanNs: 2000, SumNs: 250000},
			FeedBatch:       obs.HistStat{Count: 112, SampleEvery: 8, P50Ns: 1200, P99Ns: 7000, P999Ns: 11000, MaxNs: 12000, MeanNs: 1500, SumNs: 168000},
			CheckpointWrite: obs.HistStat{Count: 4, SampleEvery: 1, P50Ns: 2000000, P99Ns: 5000000, P999Ns: 5000000, MaxNs: 5000000, MeanNs: 2500000, SumNs: 10000000},
			MigrationPause:  obs.HistStat{Count: 3, SampleEvery: 1, P50Ns: 800000, P99Ns: 1500000, P999Ns: 1500000, MaxNs: 1500000, MeanNs: 900000, SumNs: 2700000},
		},
	}
}

// TestPrometheusGolden pins the full exposition of a fixed snapshot
// against testdata/metrics.prom: names, order, label sets and float
// rendering are all part of the server's scrape interface.
func TestPrometheusGolden(t *testing.T) {
	snap := fixedSnapshot()
	got := string(appendPrometheus(nil, &snap))
	goldenPath := filepath.Join("testdata", "metrics.prom")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus exposition drifted from golden file (run with UPDATE_GOLDEN=1 after an intentional change)\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Every line must parse as exposition 0.0.4 — a malformed line breaks
	// real scrapers regardless of golden agreement.
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as Prometheus text exposition: %q", line)
		}
	}
}

// TestPrometheusEndpoint scrapes a live server with ?format=prometheus:
// right content type, parseable output, and the histogram families
// present even before any latency was sampled.
func TestPrometheusEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Pool: dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 32}}})
	defer shutdown(t, s)

	c := dialClient(t, s)
	defer c.close()
	c.sendEvents(1, []int64{1, 2, 3, 4})
	c.barrier(1)

	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("live exposition line does not parse: %q", line)
		}
	}
	for _, want := range []string{
		"dpd_samples_total 4",
		"# TYPE dpd_ingest_latency_seconds summary",
		"# TYPE dpd_feed_batch_latency_seconds summary",
		"# TYPE dpd_checkpoint_write_seconds summary",
		"# TYPE dpd_migration_pause_seconds summary",
		`dpd_disconnects_total{reason="other"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("live exposition missing %q", want)
		}
	}
}

// TestDisconnectOtherBucket: an unknown closeReason lands in the
// counted "other" bucket instead of vanishing — the teardown-reason sum
// keeps tracking conns_total even across code drift.
func TestDisconnectOtherBucket(t *testing.T) {
	var m metrics
	m.disconnect(reasonEOF)
	m.disconnect(closeReason(200)) // a reason this build does not know
	m.disconnect(0)                // the zero reason is unknown too
	snap := m.snapshot(m.start.Add(1))
	if snap.Disconnects.EOF != 1 {
		t.Errorf("EOF = %d, want 1", snap.Disconnects.EOF)
	}
	if snap.Disconnects.Other != 2 {
		t.Errorf("Other = %d, want 2 (unknown reasons must be counted)", snap.Disconnects.Other)
	}
	total := snap.Disconnects.EOF + snap.Disconnects.ReadError + snap.Disconnects.ProtocolError +
		snap.Disconnects.SlowConsumer + snap.Disconnects.WriteError + snap.Disconnects.Shutdown +
		snap.Disconnects.Overload + snap.Disconnects.Panic + snap.Disconnects.Other
	if total != 3 {
		t.Errorf("disconnect sum = %d, want 3 (no teardown may be dropped)", total)
	}
}
