// Package server is the network serving layer over the detector pool:
// the step from library to service. It has three planes:
//
//   - The ingest plane: a TCP listener speaking a length-prefixed binary
//     protocol built on internal/wire (this file). Each connection reads
//     sample-batch frames into reusable buffers and feeds the shared
//     Pool, preserving the 0-alloc steady state per connection; lock and
//     period-change events are written back to connections that opt in
//     with a subscribe frame. Backpressure is structural: a bounded ring
//     of pending batches per connection stalls the reader (and therefore
//     the peer's TCP window) when the pool is behind, and a subscriber
//     that cannot drain its event queue is disconnected with a counted
//     reason rather than allowed to wedge a shard worker.
//
//   - The query/control plane: an HTTP/JSON endpoint set (http.go) for
//     per-stream stats and predictions, paged pool enumeration, live
//     rebalancing, health and metrics.
//
//   - The durability loop: a background checkpointer (checkpoint.go)
//     that streams Pool.Checkpoint to an atomically renamed file on an
//     interval and at shutdown, and a boot path that restores from the
//     newest valid checkpoint, falling back past corrupt files, so a
//     restarted server continues every stream byte-identically.
//
// Wire format. A connection opens with a fixed preamble, then carries
// length-prefixed frames (wire.AppendFrame / wire.ReadFrame: uvarint
// payload length, then the payload):
//
//	preamble: "DPDI" | version u8
//	frame:    uvarint len | kind u8 | body
//
// Client→server bodies:
//
//	event batch     (kind 1): key uvarint | count uvarint | count × varint value
//	magnitude batch (kind 2): key uvarint | count uvarint | count × f64
//	ping            (kind 3): token uvarint
//	subscribe       (kind 4): count uvarint | count × uvarint key (count 0 = all streams)
//
// Server→client bodies:
//
//	pong  (kind 5): token uvarint
//	event (kind 6): key uvarint | event kind u8 | t uvarint | period uvarint | prev uvarint | confidence f64
//	error (kind 7): code u8 | message (remaining bytes, UTF-8)
//
// A zero-length frame from the client is the graceful end-of-stream
// terminator. Decoding follows the wire contract: it never panics and
// never over-reads, every count is range-checked before any dependent
// allocation, and every violation is reported as a *ProtoError the
// server echoes back as an error frame before disconnecting.
package server

import (
	"fmt"

	"dpd"
	"dpd/internal/wire"
)

// Preamble and protocol version, sent once by the client when a
// connection opens.
const (
	// PreambleMagic are the first four bytes of every ingest connection.
	PreambleMagic = "DPDI"
	// ProtocolVersion is the ingest protocol version this build speaks; a
	// mismatched preamble is refused with CodeBadPreamble.
	ProtocolVersion = 1
	// preambleLen is the total preamble size: magic plus version byte.
	preambleLen = len(PreambleMagic) + 1
)

// Frame size and cardinality bounds. Every bound is checked before any
// dependent allocation, so a hostile length or count claim costs at most
// the bytes actually on the wire.
const (
	// MaxFrame bounds one frame's payload; a corrupted length prefix
	// cannot demand more than this from the read buffer.
	MaxFrame = 1 << 20
	// MaxBatch bounds the samples in one batch frame.
	MaxBatch = 1 << 16
	// MaxSubscribeKeys bounds one subscribe frame's explicit key list.
	MaxSubscribeKeys = 1 << 16
)

// Frame kinds. Client→server kinds come first; a client that sends a
// server→client kind (or an unknown one) is refused with
// CodeUnknownKind.
const (
	// KindEventBatch carries one stream's event samples (Sample.Value).
	KindEventBatch uint8 = 1
	// KindMagnitudeBatch carries one stream's magnitude samples
	// (Sample.Magnitude).
	KindMagnitudeBatch uint8 = 2
	// KindPing requests a KindPong after every prior frame on the
	// connection has been applied to the pool — the client's barrier.
	KindPing uint8 = 3
	// KindSubscribe opts the connection into event write-back for the
	// listed keys (an empty list means every stream). A later subscribe
	// frame replaces the earlier subscription.
	KindSubscribe uint8 = 4
	// KindPong answers a KindPing, echoing its token.
	KindPong uint8 = 5
	// KindEvent carries one detector state transition (lock,
	// period-change, segment-start, unlock) for a subscribed stream.
	KindEvent uint8 = 6
	// KindError carries a typed protocol error; the server closes the
	// connection after sending one.
	KindError uint8 = 7
)

// ErrCode classifies one protocol violation; it travels in the error
// frame so clients can distinguish their bug from the server's state.
type ErrCode uint8

// Protocol error codes.
const (
	// CodeBadPreamble: the connection did not open with the expected
	// magic and version.
	CodeBadPreamble ErrCode = 1
	// CodeBadFrame: a frame body was truncated, had trailing bytes, or
	// declared an out-of-range count.
	CodeBadFrame ErrCode = 2
	// CodeUnknownKind: the frame kind is not a client→server kind this
	// protocol version defines.
	CodeUnknownKind ErrCode = 3
	// CodeFrameTooLarge: the frame length prefix exceeded MaxFrame.
	CodeFrameTooLarge ErrCode = 4
)

// String returns the error code name.
func (c ErrCode) String() string {
	switch c {
	case CodeBadPreamble:
		return "bad-preamble"
	case CodeBadFrame:
		return "bad-frame"
	case CodeUnknownKind:
		return "unknown-kind"
	case CodeFrameTooLarge:
		return "frame-too-large"
	}
	return fmt.Sprintf("err-code(%d)", uint8(c))
}

// ProtoError is one typed protocol violation: what the decoder returns
// and what the error frame carries. The ingest plane never panics on
// hostile input — every malformed byte sequence becomes one of these.
type ProtoError struct {
	// Code classifies the violation.
	Code ErrCode
	// Msg is the human-readable detail echoed to the client.
	Msg string
}

// Error implements error.
func (e *ProtoError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Msg) }

// protoErrf builds a *ProtoError with a formatted message.
func protoErrf(code ErrCode, format string, args ...any) *ProtoError {
	return &ProtoError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Frame is one decoded client→server frame. A Frame is a reusable
// decode target: DecodeFrame fills it in place, recycling the Samples
// and Keys backing arrays, so a connection's steady-state decode path
// performs no allocation.
type Frame struct {
	// Kind is the frame kind (KindEventBatch, …).
	Kind uint8
	// Key is the stream key of a batch frame.
	Key uint64
	// Token is the ping token of a KindPing frame.
	Token uint64
	// Samples are the decoded samples of a batch frame, each stamped
	// with Key — ready to hand to Pool.FeedBatch unchanged.
	Samples []dpd.KeyedSample
	// Keys is the explicit key list of a subscribe frame (empty = all).
	Keys []uint64

	// raw is the connection's reusable frame-read buffer; it rides on
	// the Frame so a ring of pending frames recycles its read storage
	// along with its decode storage.
	raw []byte
}

// DecodeFrame parses one client→server frame payload into f, reusing
// f's backing storage. It never panics and never over-reads: every
// failure is a *ProtoError, counts are range-checked against the bytes
// actually present before Samples or Keys grow, and trailing bytes are
// a violation (the encoding is canonical).
func DecodeFrame(payload []byte, f *Frame) error {
	f.Kind, f.Key, f.Token = 0, 0, 0
	f.Samples = f.Samples[:0]
	f.Keys = f.Keys[:0]
	var d wire.Dec
	d.Reset(payload)
	kind := d.U8()
	if d.Err() != nil {
		return protoErrf(CodeBadFrame, "empty frame payload")
	}
	switch kind {
	case KindEventBatch, KindMagnitudeBatch:
		key := d.Uvarint()
		n := d.Uint(MaxBatch)
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "batch header: %v", d.Err())
		}
		if kind == KindEventBatch {
			// Every varint value is at least one byte, so a count beyond
			// the remaining payload is corrupt — checked before Samples
			// grows toward it.
			if n > d.Remaining() {
				return protoErrf(CodeBadFrame, "event batch declares %d samples but only %d bytes remain", n, d.Remaining())
			}
		} else if !d.Need(8 * n) {
			return protoErrf(CodeBadFrame, "magnitude batch declares %d samples but only %d bytes remain", n, d.Remaining())
		}
		if cap(f.Samples) < n {
			f.Samples = make([]dpd.KeyedSample, n)
		}
		f.Samples = f.Samples[:n]
		for i := range f.Samples {
			s := &f.Samples[i]
			s.Key = key
			if kind == KindEventBatch {
				s.Value, s.Magnitude = d.Varint(), 0
			} else {
				s.Value, s.Magnitude = 0, d.F64()
			}
		}
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "batch body: %v", d.Err())
		}
		f.Kind, f.Key = kind, key
	case KindPing:
		f.Token = d.Uvarint()
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "ping token: %v", d.Err())
		}
		f.Kind = kind
	case KindSubscribe:
		n := d.Uint(MaxSubscribeKeys)
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "subscribe count: %v", d.Err())
		}
		if n > d.Remaining() {
			return protoErrf(CodeBadFrame, "subscribe declares %d keys but only %d bytes remain", n, d.Remaining())
		}
		if cap(f.Keys) < n {
			f.Keys = make([]uint64, n)
		}
		f.Keys = f.Keys[:n]
		for i := range f.Keys {
			f.Keys[i] = d.Uvarint()
		}
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "subscribe keys: %v", d.Err())
		}
		f.Kind = kind
	default:
		return protoErrf(CodeUnknownKind, "frame kind %d is not a client frame of protocol version %d", kind, ProtocolVersion)
	}
	if d.Remaining() != 0 {
		f.Kind = 0
		return protoErrf(CodeBadFrame, "%d trailing bytes after frame body", d.Remaining())
	}
	return nil
}

// Enc stages client→server frames. Frames are length-prefixed, so the
// body must be sized before the prefix is written; Enc keeps the one
// staging buffer that makes that re-encoding allocation-free once warm.
// The zero value is ready to use. It is not safe for concurrent use;
// give each connection its own.
type Enc struct {
	payload []byte
}

// AppendEventBatch appends one event batch frame (length prefix
// included) for key to dst and returns the extended slice.
func (e *Enc) AppendEventBatch(dst []byte, key uint64, values []int64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindEventBatch)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendUint(p, len(values))
	p = wire.AppendVarints(p, values)
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendMagnitudeBatch appends one magnitude batch frame for key.
func (e *Enc) AppendMagnitudeBatch(dst []byte, key uint64, values []float64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindMagnitudeBatch)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendUint(p, len(values))
	p = wire.AppendF64s(p, values)
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendPing appends a ping frame carrying token.
func (e *Enc) AppendPing(dst []byte, token uint64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindPing)
	p = wire.AppendUvarint(p, token)
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendSubscribe appends a subscribe frame; an empty key list
// subscribes to every stream.
func (e *Enc) AppendSubscribe(dst []byte, keys []uint64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindSubscribe)
	p = wire.AppendUint(p, len(keys))
	for _, k := range keys {
		p = wire.AppendUvarint(p, k)
	}
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendPreamble appends the connection preamble.
func AppendPreamble(dst []byte) []byte {
	dst = append(dst, PreambleMagic...)
	return append(dst, ProtocolVersion)
}

// appendPong appends a pong frame (server side; no staging needed —
// the body is a fixed-size scratch).
func appendPong(dst []byte, token uint64) []byte {
	var body [1 + 10]byte
	p := wire.AppendU8(body[:0], KindPong)
	p = wire.AppendUvarint(p, token)
	return wire.AppendFrame(dst, p)
}

// appendEvent appends a server event frame for one stream transition.
func appendEvent(dst []byte, key uint64, ev *dpd.Event) []byte {
	var body [1 + 10 + 1 + 10 + 10 + 10 + 8]byte
	p := wire.AppendU8(body[:0], KindEvent)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendU8(p, uint8(ev.Kind))
	p = wire.AppendUvarint(p, ev.T)
	p = wire.AppendUint(p, ev.Period)
	p = wire.AppendUint(p, ev.PrevPeriod)
	p = wire.AppendF64(p, ev.Confidence)
	return wire.AppendFrame(dst, p)
}

// appendError appends a typed protocol error frame.
func appendError(dst []byte, code ErrCode, msg string) []byte {
	body := make([]byte, 0, 1+1+len(msg))
	p := wire.AppendU8(body, KindError)
	p = wire.AppendU8(p, uint8(code))
	p = append(p, msg...)
	return wire.AppendFrame(dst, p)
}

// ServerFrame is one decoded server→client frame: what loadgen and
// tests read back (pongs, events, errors).
type ServerFrame struct {
	// Kind is the frame kind (KindPong, KindEvent or KindError).
	Kind uint8
	// Token echoes the ping token of a pong.
	Token uint64
	// Key is the stream key of an event frame.
	Key uint64
	// Event is the decoded transition of an event frame.
	Event dpd.Event
	// Code is the error code of an error frame.
	Code ErrCode
	// Msg is the error message of an error frame.
	Msg string
}

// DecodeServerFrame parses one server→client frame payload. Like
// DecodeFrame it never panics; failures are *ProtoError.
func DecodeServerFrame(payload []byte, f *ServerFrame) error {
	*f = ServerFrame{}
	var d wire.Dec
	d.Reset(payload)
	kind := d.U8()
	switch kind {
	case KindPong:
		f.Token = d.Uvarint()
	case KindEvent:
		f.Key = d.Uvarint()
		f.Event.Kind = dpd.EventKind(d.U8())
		f.Event.T = d.Uvarint()
		f.Event.Period = d.Uint(1 << 30)
		f.Event.PrevPeriod = d.Uint(1 << 30)
		f.Event.Confidence = d.F64()
	case KindError:
		f.Code = ErrCode(d.U8())
		f.Msg = string(payload[d.Offset():])
		d.Bytes(d.Remaining())
	default:
		return protoErrf(CodeUnknownKind, "frame kind %d is not a server frame", kind)
	}
	if d.Err() != nil {
		return protoErrf(CodeBadFrame, "server frame: %v", d.Err())
	}
	if d.Remaining() != 0 {
		return protoErrf(CodeBadFrame, "%d trailing bytes after server frame", d.Remaining())
	}
	f.Kind = kind
	return nil
}
