// Package server is the network serving layer over the detector pool:
// the step from library to service. It has three planes:
//
//   - The ingest plane: a TCP listener speaking a length-prefixed binary
//     protocol built on internal/wire (this file). Each connection reads
//     sample-batch frames into reusable buffers and feeds the shared
//     Pool, preserving the 0-alloc steady state per connection; lock and
//     period-change events are written back to connections that opt in
//     with a subscribe frame. Backpressure is structural: a bounded ring
//     of pending batches per connection stalls the reader (and therefore
//     the peer's TCP window) when the pool is behind, and a subscriber
//     that cannot drain its event queue is disconnected with a counted
//     reason rather than allowed to wedge a shard worker.
//
//   - The query/control plane: an HTTP/JSON endpoint set (http.go) for
//     per-stream stats and predictions, paged pool enumeration, live
//     rebalancing, health and metrics.
//
//   - The durability loop: a background checkpointer (checkpoint.go)
//     that streams Pool.Checkpoint to an atomically renamed file on an
//     interval and at shutdown, and a boot path that restores from the
//     newest valid checkpoint, falling back past corrupt files, so a
//     restarted server continues every stream byte-identically.
//
// Wire format. A connection opens with a fixed preamble, then carries
// length-prefixed frames (wire.AppendFrame / wire.ReadFrame: uvarint
// payload length, then the payload):
//
//	preamble: "DPDI" | version u8
//	frame:    uvarint len | kind u8 | body
//
// Client→server bodies:
//
//	event batch     (kind 1): key uvarint | count uvarint | count × varint value
//	magnitude batch (kind 2): key uvarint | count uvarint | count × f64
//	ping            (kind 3): token uvarint
//	subscribe       (kind 4): count uvarint | count × uvarint key (count 0 = all streams)
//	cursors         (kind 8): count uvarint | count × uvarint key
//
// Server→client bodies:
//
//	pong          (kind 5): token uvarint
//	event         (kind 6): key uvarint | event kind u8 | t uvarint | period uvarint | prev uvarint | confidence f64
//	error         (kind 7): code u8 | retry-after-ms uvarint | message (remaining bytes, UTF-8)
//	cursors reply (kind 9): count uvarint | count × (key uvarint | samples uvarint)
//	durable       (kind 10): token uvarint
//	wrong node    (kind 11): key uvarint | epoch uvarint | owner (remaining bytes, UTF-8)
//
// A cursors frame asks for the per-stream applied sample counts of the
// listed keys; the reply echoes each key with its count. A replaying
// client uses the pair on reconnect to compute exactly which suffix of
// its in-flight window the server has not yet applied. A durable frame
// announces the highest ping token whose preceding frames are covered by
// a durable checkpoint (or, on a server running without a checkpoint
// directory, simply applied) — the client's signal that the window
// prefix up to that token can never be lost to a crash.
//
// A wrong-node frame (cluster mode only) rejects one batch without
// closing the connection: the key is owned by another node under the
// named routing epoch, the batch was NOT applied, and the client must
// re-route the key (refetch the routing table, replay the rejected
// suffix to the owner). It is the only non-terminal server frame that
// refuses work — everything else on the connection remains valid.
//
// A zero-length frame from the client is the graceful end-of-stream
// terminator. Decoding follows the wire contract: it never panics and
// never over-reads, every count is range-checked before any dependent
// allocation, and every violation is reported as a *ProtoError the
// server echoes back as an error frame before disconnecting.
package server

import (
	"fmt"
	"time"

	"dpd"
	"dpd/internal/wire"
)

// Preamble and protocol version, sent once by the client when a
// connection opens.
const (
	// PreambleMagic are the first four bytes of every ingest connection.
	PreambleMagic = "DPDI"
	// ProtocolVersion is the ingest protocol version this build speaks; a
	// mismatched preamble is refused with CodeBadPreamble. Version 2
	// added cursors, durable and retry-after (frames a v1 peer would
	// reject), so the version byte moved with them.
	ProtocolVersion = 2
	// preambleLen is the total preamble size: magic plus version byte.
	preambleLen = len(PreambleMagic) + 1
)

// Frame size and cardinality bounds. Every bound is checked before any
// dependent allocation, so a hostile length or count claim costs at most
// the bytes actually on the wire.
const (
	// MaxFrame bounds one frame's payload; a corrupted length prefix
	// cannot demand more than this from the read buffer.
	MaxFrame = 1 << 20
	// MaxBatch bounds the samples in one batch frame.
	MaxBatch = 1 << 16
	// MaxSubscribeKeys bounds one subscribe frame's explicit key list.
	MaxSubscribeKeys = 1 << 16
	// MaxCursorKeys bounds one cursors frame's key list. It is smaller
	// than MaxSubscribeKeys because the reply carries a samples count per
	// key and must itself fit in MaxFrame; clients with wider windows
	// chunk their cursor requests.
	MaxCursorKeys = 1 << 15
)

// Frame kinds. Client→server kinds come first; a client that sends a
// server→client kind (or an unknown one) is refused with
// CodeUnknownKind.
const (
	// KindEventBatch carries one stream's event samples (Sample.Value).
	KindEventBatch uint8 = 1
	// KindMagnitudeBatch carries one stream's magnitude samples
	// (Sample.Magnitude).
	KindMagnitudeBatch uint8 = 2
	// KindPing requests a KindPong after every prior frame on the
	// connection has been applied to the pool — the client's barrier.
	KindPing uint8 = 3
	// KindSubscribe opts the connection into event write-back for the
	// listed keys (an empty list means every stream). A later subscribe
	// frame replaces the earlier subscription.
	KindSubscribe uint8 = 4
	// KindPong answers a KindPing, echoing its token.
	KindPong uint8 = 5
	// KindEvent carries one detector state transition (lock,
	// period-change, segment-start, unlock) for a subscribed stream.
	KindEvent uint8 = 6
	// KindError carries a typed protocol error; the server closes the
	// connection after sending one.
	KindError uint8 = 7
	// KindCursors asks for the per-stream applied sample counts of the
	// listed keys — the replaying client's reconnect handshake.
	KindCursors uint8 = 8
	// KindCursorsReply answers a KindCursors frame with each key's
	// applied count.
	KindCursorsReply uint8 = 9
	// KindDurable announces the highest ping token covered by a durable
	// checkpoint; a client in durable-ack mode prunes its replay window
	// on these instead of pongs.
	KindDurable uint8 = 10
	// KindWrongNode rejects one batch frame in cluster mode: the key
	// belongs to another node. The body names the owning node and the
	// routing epoch the decision was made under; the batch was not
	// applied and the connection stays open.
	KindWrongNode uint8 = 11
)

// ErrCode classifies one protocol violation; it travels in the error
// frame so clients can distinguish their bug from the server's state.
type ErrCode uint8

// Protocol error codes.
const (
	// CodeBadPreamble: the connection did not open with the expected
	// magic and version.
	CodeBadPreamble ErrCode = 1
	// CodeBadFrame: a frame body was truncated, had trailing bytes, or
	// declared an out-of-range count.
	CodeBadFrame ErrCode = 2
	// CodeUnknownKind: the frame kind is not a client→server kind this
	// protocol version defines.
	CodeUnknownKind ErrCode = 3
	// CodeFrameTooLarge: the frame length prefix exceeded MaxFrame.
	CodeFrameTooLarge ErrCode = 4
	// CodeOverloaded: the server shed this connection (admission limit or
	// memory accounting) rather than degrade; the error frame carries a
	// retry-after hint and the client should back off and reconnect.
	CodeOverloaded ErrCode = 5
)

// String returns the error code name.
func (c ErrCode) String() string {
	switch c {
	case CodeBadPreamble:
		return "bad-preamble"
	case CodeBadFrame:
		return "bad-frame"
	case CodeUnknownKind:
		return "unknown-kind"
	case CodeFrameTooLarge:
		return "frame-too-large"
	case CodeOverloaded:
		return "overloaded"
	}
	return fmt.Sprintf("err-code(%d)", uint8(c))
}

// ProtoError is one typed protocol violation: what the decoder returns
// and what the error frame carries. The ingest plane never panics on
// hostile input — every malformed byte sequence becomes one of these.
type ProtoError struct {
	// Code classifies the violation.
	Code ErrCode
	// Msg is the human-readable detail echoed to the client.
	Msg string
}

// Error implements error.
func (e *ProtoError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Msg) }

// protoErrf builds a *ProtoError with a formatted message.
func protoErrf(code ErrCode, format string, args ...any) *ProtoError {
	return &ProtoError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Frame is one decoded client→server frame. A Frame is a reusable
// decode target: DecodeFrame fills it in place, recycling the Samples
// and Keys backing arrays, so a connection's steady-state decode path
// performs no allocation.
type Frame struct {
	// Kind is the frame kind (KindEventBatch, …).
	Kind uint8
	// Key is the stream key of a batch frame.
	Key uint64
	// Token is the ping token of a KindPing frame.
	Token uint64
	// Samples are the decoded samples of a batch frame, each stamped
	// with Key — ready to hand to Pool.FeedBatch unchanged.
	Samples []dpd.KeyedSample
	// Keys is the explicit key list of a subscribe frame (empty = all)
	// or the queried key list of a cursors frame.
	Keys []uint64

	// raw is the connection's reusable frame-read buffer; it rides on
	// the Frame so a ring of pending frames recycles its read storage
	// along with its decode storage.
	raw []byte
	// size is the wire payload size charged to the pending-memory
	// accounts while this frame waits for the feeder.
	size int
	// t0 is the ingest-latency sample stamp: set by the reader just
	// before decoding when this frame was elected by the sampled ingest
	// histogram, zero otherwise. The feeder observes decode→feed latency
	// from it after applying a batch frame.
	t0 time.Time
}

// DecodeFrame parses one client→server frame payload into f, reusing
// f's backing storage. It never panics and never over-reads: every
// failure is a *ProtoError, counts are range-checked against the bytes
// actually present before Samples or Keys grow, and trailing bytes are
// a violation (the encoding is canonical).
func DecodeFrame(payload []byte, f *Frame) error {
	f.Kind, f.Key, f.Token = 0, 0, 0
	f.Samples = f.Samples[:0]
	f.Keys = f.Keys[:0]
	var d wire.Dec
	d.Reset(payload)
	kind := d.U8()
	if d.Err() != nil {
		return protoErrf(CodeBadFrame, "empty frame payload")
	}
	switch kind {
	case KindEventBatch, KindMagnitudeBatch:
		key := d.Uvarint()
		n := d.Uint(MaxBatch)
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "batch header: %v", d.Err())
		}
		if kind == KindEventBatch {
			// Every varint value is at least one byte, so a count beyond
			// the remaining payload is corrupt — checked before Samples
			// grows toward it.
			if n > d.Remaining() {
				return protoErrf(CodeBadFrame, "event batch declares %d samples but only %d bytes remain", n, d.Remaining())
			}
		} else if !d.Need(8 * n) {
			return protoErrf(CodeBadFrame, "magnitude batch declares %d samples but only %d bytes remain", n, d.Remaining())
		}
		if cap(f.Samples) < n {
			f.Samples = make([]dpd.KeyedSample, n)
		}
		f.Samples = f.Samples[:n]
		for i := range f.Samples {
			s := &f.Samples[i]
			s.Key = key
			if kind == KindEventBatch {
				s.Value, s.Magnitude = d.Varint(), 0
			} else {
				s.Value, s.Magnitude = 0, d.F64()
			}
		}
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "batch body: %v", d.Err())
		}
		f.Kind, f.Key = kind, key
	case KindPing:
		f.Token = d.Uvarint()
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "ping token: %v", d.Err())
		}
		f.Kind = kind
	case KindSubscribe, KindCursors:
		max, what := MaxSubscribeKeys, "subscribe"
		if kind == KindCursors {
			max, what = MaxCursorKeys, "cursors"
		}
		n := d.Uint(max)
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "%s count: %v", what, d.Err())
		}
		if n > d.Remaining() {
			return protoErrf(CodeBadFrame, "%s declares %d keys but only %d bytes remain", what, n, d.Remaining())
		}
		if cap(f.Keys) < n {
			f.Keys = make([]uint64, n)
		}
		f.Keys = f.Keys[:n]
		for i := range f.Keys {
			f.Keys[i] = d.Uvarint()
		}
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "%s keys: %v", what, d.Err())
		}
		f.Kind = kind
	default:
		return protoErrf(CodeUnknownKind, "frame kind %d is not a client frame of protocol version %d", kind, ProtocolVersion)
	}
	if d.Remaining() != 0 {
		f.Kind = 0
		return protoErrf(CodeBadFrame, "%d trailing bytes after frame body", d.Remaining())
	}
	return nil
}

// Enc stages client→server frames. Frames are length-prefixed, so the
// body must be sized before the prefix is written; Enc keeps the one
// staging buffer that makes that re-encoding allocation-free once warm.
// The zero value is ready to use. It is not safe for concurrent use;
// give each connection its own.
type Enc struct {
	payload []byte
}

// AppendEventBatch appends one event batch frame (length prefix
// included) for key to dst and returns the extended slice.
func (e *Enc) AppendEventBatch(dst []byte, key uint64, values []int64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindEventBatch)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendUint(p, len(values))
	p = wire.AppendVarints(p, values)
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendMagnitudeBatch appends one magnitude batch frame for key.
func (e *Enc) AppendMagnitudeBatch(dst []byte, key uint64, values []float64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindMagnitudeBatch)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendUint(p, len(values))
	p = wire.AppendF64s(p, values)
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendPing appends a ping frame carrying token.
func (e *Enc) AppendPing(dst []byte, token uint64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindPing)
	p = wire.AppendUvarint(p, token)
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendSubscribe appends a subscribe frame; an empty key list
// subscribes to every stream.
func (e *Enc) AppendSubscribe(dst []byte, keys []uint64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindSubscribe)
	p = wire.AppendUint(p, len(keys))
	for _, k := range keys {
		p = wire.AppendUvarint(p, k)
	}
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendCursors appends a cursors frame querying the applied sample
// count of each listed key. len(keys) must not exceed MaxCursorKeys;
// chunk wider windows.
func (e *Enc) AppendCursors(dst []byte, keys []uint64) []byte {
	p := e.payload[:0]
	p = wire.AppendU8(p, KindCursors)
	p = wire.AppendUint(p, len(keys))
	for _, k := range keys {
		p = wire.AppendUvarint(p, k)
	}
	e.payload = p
	return wire.AppendFrame(dst, p)
}

// AppendPreamble appends the connection preamble.
func AppendPreamble(dst []byte) []byte {
	dst = append(dst, PreambleMagic...)
	return append(dst, ProtocolVersion)
}

// appendPong appends a pong frame (server side; no staging needed —
// the body is a fixed-size scratch).
func appendPong(dst []byte, token uint64) []byte {
	var body [1 + 10]byte
	p := wire.AppendU8(body[:0], KindPong)
	p = wire.AppendUvarint(p, token)
	return wire.AppendFrame(dst, p)
}

// appendEvent appends a server event frame for one stream transition.
func appendEvent(dst []byte, key uint64, ev *dpd.Event) []byte {
	var body [1 + 10 + 1 + 10 + 10 + 10 + 8]byte
	p := wire.AppendU8(body[:0], KindEvent)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendU8(p, uint8(ev.Kind))
	p = wire.AppendUvarint(p, ev.T)
	p = wire.AppendUint(p, ev.Period)
	p = wire.AppendUint(p, ev.PrevPeriod)
	p = wire.AppendF64(p, ev.Confidence)
	return wire.AppendFrame(dst, p)
}

// appendError appends a typed protocol error frame. retryAfter is the
// back-off hint in milliseconds (0 for protocol violations, where
// retrying the same bytes cannot help).
func appendError(dst []byte, code ErrCode, retryAfterMs uint64, msg string) []byte {
	body := make([]byte, 0, 1+1+10+len(msg))
	p := wire.AppendU8(body, KindError)
	p = wire.AppendU8(p, uint8(code))
	p = wire.AppendUvarint(p, retryAfterMs)
	p = append(p, msg...)
	return wire.AppendFrame(dst, p)
}

// appendDurable appends a durable frame carrying the highest
// checkpoint-covered ping token.
func appendDurable(dst []byte, token uint64) []byte {
	var body [1 + 10]byte
	p := wire.AppendU8(body[:0], KindDurable)
	p = wire.AppendUvarint(p, token)
	return wire.AppendFrame(dst, p)
}

// appendWrongNode appends a wrong-node frame: the batch for key was
// rejected because owner owns it under the given routing epoch.
func appendWrongNode(dst []byte, key, epoch uint64, owner string) []byte {
	body := make([]byte, 0, 1+10+10+len(owner))
	p := wire.AppendU8(body, KindWrongNode)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendUvarint(p, epoch)
	p = append(p, owner...)
	return wire.AppendFrame(dst, p)
}

// appendCursorsReply appends a cursors-reply frame: each queried key
// with its applied sample count, in query order.
func appendCursorsReply(dst []byte, cursors []Cursor) []byte {
	body := make([]byte, 0, 1+10+20*len(cursors))
	p := wire.AppendU8(body, KindCursorsReply)
	p = wire.AppendUint(p, len(cursors))
	for _, c := range cursors {
		p = wire.AppendUvarint(p, c.Key)
		p = wire.AppendUvarint(p, c.Samples)
	}
	return wire.AppendFrame(dst, p)
}

// Cursor is one stream's applied-count entry in a cursors reply.
type Cursor struct {
	// Key is the stream key.
	Key uint64
	// Samples is the total samples the server has applied to the stream.
	Samples uint64
}

// ServerFrame is one decoded server→client frame: what the client,
// loadgen and tests read back (pongs, events, errors, cursor replies,
// durable marks). Like Frame it is a reusable decode target: the
// Cursors backing array is recycled across decodes.
type ServerFrame struct {
	// Kind is the frame kind (KindPong, KindEvent, KindError,
	// KindCursorsReply, KindDurable or KindWrongNode).
	Kind uint8
	// Token echoes the ping token of a pong, or carries the durable
	// token of a durable frame.
	Token uint64
	// Key is the stream key of an event frame.
	Key uint64
	// Event is the decoded transition of an event frame.
	Event dpd.Event
	// Code is the error code of an error frame.
	Code ErrCode
	// RetryAfterMs is the error frame's back-off hint in milliseconds
	// (0 = none).
	RetryAfterMs uint64
	// Msg is the error message of an error frame, or the owning node
	// name of a wrong-node frame.
	Msg string
	// Epoch is the routing epoch of a wrong-node frame.
	Epoch uint64
	// Cursors are the per-stream applied counts of a cursors reply.
	Cursors []Cursor
}

// DecodeServerFrame parses one server→client frame payload into f,
// reusing f's backing storage. Like DecodeFrame it never panics and
// never over-reads; every failure is a *ProtoError.
func DecodeServerFrame(payload []byte, f *ServerFrame) error {
	cursors := f.Cursors[:0]
	*f = ServerFrame{}
	f.Cursors = cursors
	var d wire.Dec
	d.Reset(payload)
	kind := d.U8()
	if d.Err() != nil {
		return protoErrf(CodeBadFrame, "empty server frame payload")
	}
	switch kind {
	case KindPong, KindDurable:
		f.Token = d.Uvarint()
	case KindEvent:
		f.Key = d.Uvarint()
		f.Event.Kind = dpd.EventKind(d.U8())
		f.Event.T = d.Uvarint()
		f.Event.Period = d.Uint(1 << 30)
		f.Event.PrevPeriod = d.Uint(1 << 30)
		f.Event.Confidence = d.F64()
	case KindError:
		f.Code = ErrCode(d.U8())
		f.RetryAfterMs = d.Uvarint()
		if d.Err() == nil {
			f.Msg = string(payload[d.Offset():])
			d.Bytes(d.Remaining())
		}
	case KindWrongNode:
		f.Key = d.Uvarint()
		f.Epoch = d.Uvarint()
		if d.Err() == nil {
			f.Msg = string(payload[d.Offset():])
			d.Bytes(d.Remaining())
		}
	case KindCursorsReply:
		n := d.Uint(MaxCursorKeys)
		if d.Err() != nil {
			return protoErrf(CodeBadFrame, "cursors reply count: %v", d.Err())
		}
		// Every entry is at least two bytes; a count beyond half the
		// remaining payload is corrupt — checked before Cursors grows.
		if n > d.Remaining()/2+1 {
			return protoErrf(CodeBadFrame, "cursors reply declares %d entries but only %d bytes remain", n, d.Remaining())
		}
		if cap(f.Cursors) < n {
			f.Cursors = make([]Cursor, n)
		}
		f.Cursors = f.Cursors[:n]
		for i := range f.Cursors {
			f.Cursors[i].Key = d.Uvarint()
			f.Cursors[i].Samples = d.Uvarint()
		}
		if d.Err() != nil {
			f.Cursors = f.Cursors[:0]
			return protoErrf(CodeBadFrame, "cursors reply entries: %v", d.Err())
		}
	default:
		return protoErrf(CodeUnknownKind, "frame kind %d is not a server frame", kind)
	}
	if d.Err() != nil {
		return protoErrf(CodeBadFrame, "server frame: %v", d.Err())
	}
	if d.Remaining() != 0 {
		return protoErrf(CodeBadFrame, "%d trailing bytes after server frame", d.Remaining())
	}
	f.Kind = kind
	return nil
}
