package server

import (
	"errors"
	"math"
	"testing"

	"dpd"
	"dpd/internal/wire"
)

// stripLen removes the uvarint length prefix Enc's Append* helpers
// emit, yielding the bare payload DecodeFrame consumes.
func stripLen(t *testing.T, frame []byte) []byte {
	t.Helper()
	var d wire.Dec
	d.Reset(frame)
	n := d.Uvarint()
	if d.Err() != nil || int(n) != d.Remaining() {
		t.Fatalf("bad frame length prefix: n=%d remaining=%d err=%v", n, d.Remaining(), d.Err())
	}
	return frame[d.Offset():]
}

func TestDecodeFrameRoundTrip(t *testing.T) {
	var enc Enc
	var f Frame

	t.Run("event batch", func(t *testing.T) {
		values := []int64{0, -5, 1 << 40, 7, math.MaxInt64, math.MinInt64}
		payload := stripLen(t, enc.AppendEventBatch(nil, 42, values))
		if err := DecodeFrame(payload, &f); err != nil {
			t.Fatal(err)
		}
		if f.Kind != KindEventBatch || f.Key != 42 || len(f.Samples) != len(values) {
			t.Fatalf("decoded kind=%d key=%d n=%d", f.Kind, f.Key, len(f.Samples))
		}
		for i, v := range values {
			if s := f.Samples[i]; s.Key != 42 || s.Value != v || s.Magnitude != 0 {
				t.Fatalf("sample %d = %+v, want key 42 value %d", i, s, v)
			}
		}
	})
	t.Run("magnitude batch", func(t *testing.T) {
		values := []float64{0, 1.5, -2.25, math.Inf(1)}
		payload := stripLen(t, enc.AppendMagnitudeBatch(nil, 7, values))
		if err := DecodeFrame(payload, &f); err != nil {
			t.Fatal(err)
		}
		if f.Kind != KindMagnitudeBatch || f.Key != 7 || len(f.Samples) != len(values) {
			t.Fatalf("decoded kind=%d key=%d n=%d", f.Kind, f.Key, len(f.Samples))
		}
		for i, v := range values {
			if s := f.Samples[i]; s.Key != 7 || s.Magnitude != v || s.Value != 0 {
				t.Fatalf("sample %d = %+v, want key 7 magnitude %g", i, s, v)
			}
		}
	})
	t.Run("ping", func(t *testing.T) {
		payload := stripLen(t, enc.AppendPing(nil, 0xDEAD))
		if err := DecodeFrame(payload, &f); err != nil {
			t.Fatal(err)
		}
		if f.Kind != KindPing || f.Token != 0xDEAD {
			t.Fatalf("decoded kind=%d token=%#x", f.Kind, f.Token)
		}
	})
	t.Run("subscribe", func(t *testing.T) {
		payload := stripLen(t, enc.AppendSubscribe(nil, []uint64{1, 9, 1 << 50}))
		if err := DecodeFrame(payload, &f); err != nil {
			t.Fatal(err)
		}
		if f.Kind != KindSubscribe || len(f.Keys) != 3 || f.Keys[2] != 1<<50 {
			t.Fatalf("decoded kind=%d keys=%v", f.Kind, f.Keys)
		}
	})
	t.Run("subscribe all", func(t *testing.T) {
		payload := stripLen(t, enc.AppendSubscribe(nil, nil))
		if err := DecodeFrame(payload, &f); err != nil {
			t.Fatal(err)
		}
		if f.Kind != KindSubscribe || len(f.Keys) != 0 {
			t.Fatalf("decoded kind=%d keys=%v", f.Kind, f.Keys)
		}
	})
}

// TestDecodeFrameHostileInput: every malformed payload yields a typed
// *ProtoError with the right code — never a panic, never a silent
// success.
func TestDecodeFrameHostileInput(t *testing.T) {
	var enc Enc
	valid := stripLen(t, enc.AppendEventBatch(nil, 3, []int64{1, 2, 3}))
	cases := []struct {
		name    string
		payload []byte
		code    ErrCode
	}{
		{"empty", nil, CodeBadFrame},
		{"unknown kind", []byte{99, 1, 2}, CodeUnknownKind},
		{"server kind from client", []byte{KindPong, 1}, CodeUnknownKind},
		{"truncated batch header", valid[:2], CodeBadFrame},
		{"truncated batch body", valid[:len(valid)-1], CodeBadFrame},
		{"trailing bytes", append(append([]byte{}, valid...), 0), CodeBadFrame},
		{"count beyond payload", []byte{KindEventBatch, 3, 200, 100, 1, 2}, CodeBadFrame},
		{"magnitude count beyond payload", []byte{KindMagnitudeBatch, 3, 4, 0, 0}, CodeBadFrame},
		{"subscribe count beyond payload", []byte{KindSubscribe, 50, 1}, CodeBadFrame},
		{"ping missing token", []byte{KindPing}, CodeBadFrame},
		{"count over MaxBatch", append([]byte{KindEventBatch, 3}, wire.AppendUvarint(nil, MaxBatch+1)...), CodeBadFrame},
	}
	var f Frame
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := DecodeFrame(tc.payload, &f)
			if err == nil {
				t.Fatalf("decode succeeded on %q", tc.name)
			}
			var pe *ProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ProtoError", err)
			}
			if pe.Code != tc.code {
				t.Fatalf("code = %s, want %s (%v)", pe.Code, tc.code, err)
			}
		})
	}
}

// TestDecodeFrameReuse: a Frame recycled across decodes of different
// kinds never leaks state from the previous frame.
func TestDecodeFrameReuse(t *testing.T) {
	var enc Enc
	var f Frame
	if err := DecodeFrame(stripLen(t, enc.AppendEventBatch(nil, 1, []int64{9, 9, 9})), &f); err != nil {
		t.Fatal(err)
	}
	if err := DecodeFrame(stripLen(t, enc.AppendSubscribe(nil, []uint64{5})), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Samples) != 0 || len(f.Keys) != 1 {
		t.Fatalf("reused frame leaked: samples=%d keys=%d", len(f.Samples), len(f.Keys))
	}
	if err := DecodeFrame(stripLen(t, enc.AppendPing(nil, 2)), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Keys) != 0 || f.Token != 2 {
		t.Fatalf("reused frame leaked: keys=%v token=%d", f.Keys, f.Token)
	}
}

func TestServerFrameRoundTrip(t *testing.T) {
	var sf ServerFrame
	t.Run("pong", func(t *testing.T) {
		payload := stripLen(t, appendPong(nil, 77))
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindPong || sf.Token != 77 {
			t.Fatalf("decoded %+v", sf)
		}
	})
	t.Run("event", func(t *testing.T) {
		ev := dpd.Event{Kind: dpd.EventLock, T: 1027, Period: 12, PrevPeriod: 0, Confidence: 1}
		payload := stripLen(t, appendEvent(nil, 42, &ev))
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindEvent || sf.Key != 42 || sf.Event != ev {
			t.Fatalf("decoded %+v, want key 42 event %+v", sf, ev)
		}
	})
	t.Run("error", func(t *testing.T) {
		payload := stripLen(t, appendError(nil, CodeBadFrame, 0, "trailing bytes"))
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindError || sf.Code != CodeBadFrame || sf.Msg != "trailing bytes" || sf.RetryAfterMs != 0 {
			t.Fatalf("decoded %+v", sf)
		}
	})
	t.Run("error with retry-after", func(t *testing.T) {
		payload := stripLen(t, appendError(nil, CodeOverloaded, 1500, "shedding"))
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindError || sf.Code != CodeOverloaded || sf.RetryAfterMs != 1500 || sf.Msg != "shedding" {
			t.Fatalf("decoded %+v", sf)
		}
	})
	t.Run("durable", func(t *testing.T) {
		payload := stripLen(t, appendDurable(nil, 1<<40))
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindDurable || sf.Token != 1<<40 {
			t.Fatalf("decoded %+v", sf)
		}
	})
	t.Run("cursors reply", func(t *testing.T) {
		in := []Cursor{{Key: 3, Samples: 1000}, {Key: 1 << 50, Samples: 0}, {Key: 7, Samples: 42}}
		payload := stripLen(t, appendCursorsReply(nil, in))
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindCursorsReply || len(sf.Cursors) != len(in) {
			t.Fatalf("decoded %+v", sf)
		}
		for i, c := range in {
			if sf.Cursors[i] != c {
				t.Fatalf("cursor %d = %+v, want %+v", i, sf.Cursors[i], c)
			}
		}
	})
}

// TestCursorsRoundTrip: the client→server cursors frame decodes back to
// the queried key list.
func TestCursorsRoundTrip(t *testing.T) {
	var enc Enc
	var f Frame
	keys := []uint64{9, 1, 1 << 62}
	payload := stripLen(t, enc.AppendCursors(nil, keys))
	if err := DecodeFrame(payload, &f); err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindCursors || len(f.Keys) != len(keys) {
		t.Fatalf("decoded kind=%d keys=%v", f.Kind, f.Keys)
	}
	for i, k := range keys {
		if f.Keys[i] != k {
			t.Fatalf("key %d = %d, want %d", i, f.Keys[i], k)
		}
	}
}

// FuzzIngestFrame is the protocol-level fuzz target (ISSUE 5): the
// ingest decoder must never panic on arbitrary payloads, must classify
// every failure as a typed *ProtoError, and — when a payload does
// decode — must survive canonical re-encoding to the same frame. The
// seed corpus mirrors FuzzRestore's philosophy: valid frames of every
// kind, truncations at field boundaries, bit flips, version/kind skew
// and hostile counts.
func FuzzIngestFrame(f *testing.F) {
	var enc Enc
	valids := [][]byte{
		enc.AppendEventBatch(nil, 42, []int64{1, -2, 3, 1 << 33}),
		enc.AppendMagnitudeBatch(nil, 9, []float64{0.5, -1.25, 44}),
		enc.AppendPing(nil, 1234),
		enc.AppendSubscribe(nil, []uint64{7, 8, 9}),
		enc.AppendSubscribe(nil, nil),
		enc.AppendCursors(nil, []uint64{1, 2, 1 << 40}),
	}
	for _, frame := range valids {
		// Strip the length prefix: the target consumes bare payloads.
		var d wire.Dec
		d.Reset(frame)
		d.Uvarint()
		payload := frame[d.Offset():]
		f.Add(append([]byte{}, payload...))
		// Truncations at every byte boundary of the first valid frame.
		for i := 0; i < len(payload); i++ {
			f.Add(append([]byte{}, payload[:i]...))
		}
		// Bit flips in the header region.
		for i := 0; i < len(payload) && i < 4; i++ {
			mut := append([]byte{}, payload...)
			mut[i] ^= 0x80
			f.Add(mut)
		}
	}
	// Kind skew and hostile counts.
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 2, 3})
	f.Add(append([]byte{KindEventBatch, 1}, wire.AppendUvarint(nil, 1<<40)...))
	f.Add(append([]byte{KindMagnitudeBatch, 1}, wire.AppendUvarint(nil, MaxBatch)...))
	f.Add(append([]byte{KindSubscribe}, wire.AppendUvarint(nil, MaxSubscribeKeys)...))

	f.Fuzz(func(t *testing.T, payload []byte) {
		var fr Frame
		err := DecodeFrame(payload, &fr)
		if err != nil {
			var pe *ProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("decode error %v is not a *ProtoError", err)
			}
			if pe.Code == 0 {
				t.Fatalf("ProtoError with zero code: %v", err)
			}
			return
		}
		// Round trip: re-encode the decoded frame and decode it again —
		// the two decodes must agree on every field. (Byte equality is
		// not required: LEB128 admits non-canonical encodings that the
		// decoder accepts but the encoder never emits.)
		var enc Enc
		var re []byte
		switch fr.Kind {
		case KindEventBatch:
			vs := make([]int64, len(fr.Samples))
			for i, s := range fr.Samples {
				vs[i] = s.Value
			}
			re = enc.AppendEventBatch(nil, fr.Key, vs)
		case KindMagnitudeBatch:
			vs := make([]float64, len(fr.Samples))
			for i, s := range fr.Samples {
				vs[i] = s.Magnitude
			}
			re = enc.AppendMagnitudeBatch(nil, fr.Key, vs)
		case KindPing:
			re = enc.AppendPing(nil, fr.Token)
		case KindSubscribe:
			re = enc.AppendSubscribe(nil, append([]uint64{}, fr.Keys...))
		case KindCursors:
			re = enc.AppendCursors(nil, append([]uint64{}, fr.Keys...))
		default:
			t.Fatalf("decode succeeded with unknown kind %d", fr.Kind)
		}
		var d wire.Dec
		d.Reset(re)
		d.Uvarint()
		var fr2 Frame
		if err := DecodeFrame(re[d.Offset():], &fr2); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Key != fr.Key || fr2.Token != fr.Token ||
			len(fr2.Samples) != len(fr.Samples) || len(fr2.Keys) != len(fr.Keys) {
			t.Fatalf("round trip mismatch: %+v vs %+v", fr, fr2)
		}
		for i := range fr.Samples {
			a, b := fr.Samples[i], fr2.Samples[i]
			if a.Key != b.Key || a.Value != b.Value ||
				math.Float64bits(a.Magnitude) != math.Float64bits(b.Magnitude) {
				t.Fatalf("sample %d mismatch: %+v vs %+v", i, a, b)
			}
		}
		for i := range fr.Keys {
			if fr.Keys[i] != fr2.Keys[i] {
				t.Fatalf("key %d mismatch: %d vs %d", i, fr.Keys[i], fr2.Keys[i])
			}
		}
	})
}
