package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dpd"
	"dpd/internal/faults"
	"dpd/internal/obs"
)

// Config parameterizes a Server. IngestAddr is required; everything
// else has serving defaults.
type Config struct {
	// IngestAddr is the TCP listen address of the binary ingest plane
	// (use "127.0.0.1:0" in tests and read Server.Addr back).
	IngestAddr string
	// HTTPAddr is the listen address of the HTTP query/control plane;
	// empty disables it.
	HTTPAddr string
	// Pool configures the shared detector pool (shard count, per-stream
	// engine factory, eviction). Config.Pool.StreamObserver is reserved
	// for the server's event write-back wiring; setting it is an error.
	Pool dpd.PoolConfig
	// CheckpointDir is where the durability loop writes pool
	// checkpoints; empty disables durability (no interval loop, no
	// restore-on-boot, no final checkpoint).
	CheckpointDir string
	// CheckpointEvery is the interval between durable checkpoints;
	// 0 selects 30s.
	CheckpointEvery time.Duration
	// CheckpointKeep is how many checkpoint files to retain; 0 selects 3.
	CheckpointKeep int
	// PendingBatches bounds each connection's ring of decoded-but-unfed
	// frames — the ingest backpressure depth; 0 selects 4.
	PendingBatches int
	// EventBuffer bounds each connection's outgoing frame queue (pongs,
	// subscribed events); a subscriber that lets it fill is disconnected
	// as a slow consumer. 0 selects 256.
	EventBuffer int
	// WriteTimeout bounds every flush to a client; 0 selects 10s.
	WriteTimeout time.Duration
	// MaxConns bounds concurrently admitted ingest connections; beyond
	// it new connections are refused with an overloaded error frame
	// carrying the RetryAfter hint. 0 means unlimited. The bound is
	// checked against a racily-read gauge, so a burst can briefly
	// overshoot by the number of in-flight accepts — it is an overload
	// valve, not an exact semaphore.
	MaxConns int
	// MaxPendingBytes bounds the total decoded-batch payload bytes
	// sitting in pending rings across every connection; a connection
	// whose reservation would exceed it is shed with an overloaded error
	// frame. 0 means unlimited.
	MaxPendingBytes int64
	// ConnPendingBytes bounds one connection's pending payload bytes the
	// same way. 0 means unlimited.
	ConnPendingBytes int64
	// RetryAfter is the back-off hint carried in overloaded error
	// frames; 0 selects 1s.
	RetryAfter time.Duration
	// FS is the filesystem the durability loop writes through; nil
	// selects the real one. Fault tests substitute a faults.Injector to
	// provoke every crash point in the checkpoint path.
	FS faults.FS
	// Logf receives operational log lines; nil selects log.Printf.
	Logf func(format string, args ...any)

	// OwnerCheck, when non-nil, is consulted before every batch frame is
	// fed: ok=false rejects the batch with a wrong-node frame naming the
	// owning node and the routing epoch instead of applying it — the
	// cluster tier's admission fence. The check and the feed run under a
	// shared lock that FeedBarrier holds exclusively, so a migration
	// that flips ownership and detaches the stream inside a FeedBarrier
	// can never race a batch into a freshly re-materialized detector.
	// OwnerCheck runs on feeder goroutines and must be cheap and
	// non-blocking.
	OwnerCheck func(key uint64) (owner string, epoch uint64, ok bool)
	// RegisterHTTP, when non-nil, is invoked with the control-plane mux
	// before the server's own routes are final, letting an embedder (the
	// cluster node) mount additional endpoints under the same listener.
	RegisterHTTP func(mux *http.ServeMux)
	// ClusterMetrics, when non-nil, supplies the value rendered as the
	// "cluster" section of the /metrics payload.
	ClusterMetrics func() *dpd.ClusterNodeMetrics
	// Obs is the observability core: the flight recorder the server (and
	// the pool it builds) records cold transitions into, and the sampled
	// latency histograms behind the /metrics latency section. Nil selects
	// a fresh default Set. Cluster embedders pass the same Set to
	// cluster.NodeConfig.Obs so one /debug/events dump interleaves both
	// layers.
	Obs *obs.Set
	// DebugAddr, when non-empty, binds a third listener serving only the
	// pprof plane (/debug/pprof/*) — kept off the query/control listener
	// so profiling exposure is an explicit operator decision.
	DebugAddr string
	// ExternalDurability hands ownership of durable acknowledgements to
	// an external replication loop: the checkpoint path stops emitting
	// durable frames (CaptureDurableMarks + DurableMark.Durable become
	// the only source), and a server without a checkpoint directory
	// stops short-circuiting pongs into durables. The cluster tier sets
	// this so a durable ack always means "replicated to the follower",
	// never merely "on this node's disk" — state a kill -9 of this node
	// would strand.
	ExternalDurability bool
}

// Server is the serving layer: one shared pool behind a binary ingest
// listener, an HTTP query/control listener and a durability loop.
// Construct with New, start with Start, stop with Shutdown.
type Server struct {
	cfg     Config
	pool    *dpd.Pool
	fs      faults.FS
	metrics metrics
	obs     *obs.Set

	ln      net.Listener
	httpLn  net.Listener
	httpSv  *http.Server
	debugLn net.Listener
	debugSv *http.Server

	mu    sync.Mutex
	conns map[*conn]struct{}

	subMu    sync.RWMutex
	subAll   map[*conn]struct{}
	subByKey map[uint64]map[*conn]struct{}
	subCount atomic.Int64

	wg      sync.WaitGroup // ingest connection handlers
	bg      sync.WaitGroup // accept loop, http serve, checkpoint loop
	stop    chan struct{}  // closed by Shutdown: background loops exit
	started atomic.Bool
	stopped atomic.Bool

	// ckptMu guards a checkpoint in flight; WriteCheckpoint TryLocks it
	// so a wedged disk stalls one checkpoint, not a queue of them.
	// ckptBuf (guarded by ckptMu) is the reused snapshot buffer the pool
	// serializes into before any disk I/O happens.
	ckptMu  sync.Mutex
	ckptBuf bytes.Buffer

	// routeMu fences batch admission against ownership changes: feeders
	// hold it shared across the OwnerCheck-and-feed pair, FeedBarrier
	// holds it exclusively. Lock order is routeMu before any pool lock.
	routeMu sync.RWMutex
}

// New builds a server: it restores the pool from the newest valid
// checkpoint in CheckpointDir (falling back past corrupt files, finally
// to a fresh pool) and binds both listeners, so a nil error means the
// addresses are owned and Addr/HTTPAddr are answerable. Nothing serves
// until Start.
func New(cfg Config) (*Server, error) {
	if cfg.IngestAddr == "" {
		return nil, errors.New("server: Config.IngestAddr is required")
	}
	if cfg.Pool.StreamObserver != nil {
		return nil, errors.New("server: Config.Pool.StreamObserver is owned by the server's event write-back; use ingest subscriptions instead")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 30 * time.Second
	}
	if cfg.CheckpointKeep <= 0 {
		cfg.CheckpointKeep = 3
	}
	if cfg.PendingBatches <= 0 {
		cfg.PendingBatches = 4
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.FS == nil {
		cfg.FS = faults.OS{}
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewSet(0)
	}

	s := &Server{
		cfg:      cfg,
		fs:       cfg.FS,
		obs:      cfg.Obs,
		conns:    make(map[*conn]struct{}),
		subAll:   make(map[*conn]struct{}),
		subByKey: make(map[uint64]map[*conn]struct{}),
		stop:     make(chan struct{}),
	}
	s.metrics.start = time.Now()
	if cfg.CheckpointDir != "" {
		// Sweep temp files orphaned by a crash between checkpoint write
		// and rename before anything else touches the directory.
		s.sweepTmp(cfg.CheckpointDir)
	}

	// Every pooled stream gets an observer that publishes its
	// transitions to subscribed connections. The hook fires per stream
	// materialization (not per sample) and the publish path takes a
	// lock-free fast exit while nobody is subscribed.
	poolCfg := cfg.Pool
	poolCfg.StreamObserver = s.streamObserver
	poolCfg.Recorder = s.obs.Rec()
	poolCfg.FeedLatency = &s.obs.FeedBatch

	pool, seq, err := restorePool(s.fs, cfg.CheckpointDir, poolCfg, cfg.Logf, &s.metrics)
	if err != nil {
		return nil, err
	}
	s.pool = pool
	s.metrics.checkpointSeq.Store(seq)

	ln, err := net.Listen("tcp", cfg.IngestAddr)
	if err != nil {
		pool.Close()
		return nil, fmt.Errorf("server: ingest listen: %w", err)
	}
	s.ln = ln
	if cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			pool.Close()
			return nil, fmt.Errorf("server: http listen: %w", err)
		}
		s.httpLn = httpLn
		s.httpSv = &http.Server{Handler: s.httpHandler()}
	}
	if cfg.DebugAddr != "" {
		debugLn, err := net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			if s.httpLn != nil {
				s.httpLn.Close()
			}
			ln.Close()
			pool.Close()
			return nil, fmt.Errorf("server: debug listen: %w", err)
		}
		s.debugLn = debugLn
		s.debugSv = &http.Server{Handler: debugHandler()}
	}
	return s, nil
}

// DebugAddr returns the bound pprof-plane address, or "" when disabled.
func (s *Server) DebugAddr() string {
	if s.debugLn == nil {
		return ""
	}
	return s.debugLn.Addr().String()
}

// Pool exposes the shared detector pool for embedders and differential
// tests; treat it as read-mostly — the ingest plane owns the feed path.
func (s *Server) Pool() *dpd.Pool { return s.pool }

// Addr returns the bound ingest address (resolves ":0" binds).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr returns the bound query-plane address, or "" when disabled.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Start launches the accept loop, the HTTP plane and the durability
// loop. It returns immediately; use Shutdown to stop.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	s.bg.Add(1)
	go s.acceptLoop()
	if s.httpSv != nil {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			if err := s.httpSv.Serve(s.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.cfg.Logf("server: http: %v", err)
			}
		}()
	}
	if s.debugSv != nil {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			if err := s.debugSv.Serve(s.debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.cfg.Logf("server: debug: %v", err)
			}
		}()
	}
	if s.cfg.CheckpointDir != "" {
		s.bg.Add(1)
		go s.checkpointLoop()
	}
}

// acceptLoop admits ingest connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.bg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

// Aux values of EvOverloadShed flight-recorder events: which valve shed
// the client.
const (
	shedAdmission = 1 // refused at admission (MaxConns)
	shedPending   = 2 // disconnected by pending-memory accounting
)

// admit applies connection-count admission control: past MaxConns the
// connection is refused immediately with an overloaded error frame
// carrying the retry-after hint, before any per-connection state is
// built — shedding must be cheaper than serving.
func (s *Server) admit(nc net.Conn) bool {
	if s.cfg.MaxConns <= 0 || s.metrics.connsActive.Load() < int64(s.cfg.MaxConns) {
		return true
	}
	s.metrics.connsRejected.Add(1)
	s.metrics.overloadSheds.Add(1)
	s.obs.Rec().Record(obs.SubServer, obs.EvOverloadShed, 0, shedAdmission)
	buf := appendError(nil, CodeOverloaded, uint64(s.cfg.RetryAfter/time.Millisecond),
		fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns))
	nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	nc.Write(buf)
	nc.Close()
	return false
}

// reservePending charges n decoded payload bytes against the
// per-connection and global pending-memory accounts, reporting false
// (with the charge rolled back) when either limit would be exceeded —
// the caller sheds the connection instead of queueing the frame.
func (s *Server) reservePending(c *conn, n int) bool {
	cp := c.pendingBytes.Add(int64(n))
	gp := s.metrics.pendingBytes.Add(int64(n))
	if (s.cfg.ConnPendingBytes > 0 && cp > s.cfg.ConnPendingBytes) ||
		(s.cfg.MaxPendingBytes > 0 && gp > s.cfg.MaxPendingBytes) {
		c.pendingBytes.Add(-int64(n))
		s.metrics.pendingBytes.Add(-int64(n))
		return false
	}
	return true
}

// releasePending returns a reservation after the feeder has applied
// (or teardown has abandoned) the frame.
func (s *Server) releasePending(c *conn, n int) {
	if n > 0 {
		c.pendingBytes.Add(-int64(n))
		s.metrics.pendingBytes.Add(-int64(n))
	}
}

// Shutdown stops the server in the loss-free order: stop admitting,
// drain the control plane, tear down ingest connections and join their
// feeders — frames already read off the wire are applied, never dropped
// behind a pong — quiesce the pool, then take the final durable
// checkpoint of the quiesced state. A SIGTERM handled this way loses
// nothing that was acknowledged (a ping barrier) before the signal. The
// context bounds the HTTP drain; ingest teardown is prompt (sockets are
// closed, only already-decoded frames are waited out).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.stopped.Swap(true) {
		return errors.New("server: Shutdown called twice")
	}
	close(s.stop)
	s.ln.Close()

	var firstErr error
	if s.httpSv != nil {
		if err := s.httpSv.Shutdown(ctx); err != nil {
			firstErr = err
		}
	}
	if s.debugSv != nil {
		s.debugSv.Close()
	}

	s.mu.Lock()
	for c := range s.conns {
		c.close(reasonShutdown)
	}
	s.mu.Unlock()
	s.wg.Wait()

	s.pool.Close()
	s.bg.Wait()

	if s.cfg.CheckpointDir != "" {
		// The final checkpoint runs under the caller's deadline: a wedged
		// disk must not turn shutdown into a hang. An abandoned write is
		// only a lost checkpoint — the previous durable one still stands.
		done := make(chan error, 1)
		go func() {
			path, err := s.WriteCheckpoint()
			if err == nil && path != "" {
				// Best-effort flight-recorder sidecar next to the final
				// checkpoint: the last thing the process did, preserved for
				// post-mortems. Failure to write it never fails shutdown.
				s.writeEventSidecar(path)
			}
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("server: final checkpoint: %w", err)
			}
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = fmt.Errorf("server: final checkpoint abandoned: %w", ctx.Err())
			}
		}
	}
	return firstErr
}

// Abort is the crash-only stop: it tears the server down like Shutdown
// but takes no final checkpoint and honors no drain contract beyond
// joining its goroutines. Chaos tests use it as an in-process kill -9 —
// whatever the last durable checkpoint covered is all a restart gets.
func (s *Server) Abort() {
	if s.stopped.Swap(true) {
		return
	}
	close(s.stop)
	s.ln.Close()
	if s.httpSv != nil {
		s.httpSv.Close()
	}
	if s.debugSv != nil {
		s.debugSv.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.close(reasonShutdown)
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.pool.Close()
	s.bg.Wait()
}

// DurableMark pairs a connection with the newest ping token it had
// acknowledged when a durability snapshot began. Whoever made the
// snapshot durable (the checkpoint writer, or a cluster replication
// round) calls Durable to release the mark to the client.
type DurableMark struct {
	c     *conn
	token uint64
}

// Durable notifies the mark's connection that everything up to its
// ping token is durable. It never blocks: a mark dropped against a
// slow consumer only delays window pruning until the next round.
func (m DurableMark) Durable() { m.c.sendDurable(m.token) }

// CaptureDurableMarks records, per live connection, the newest ping
// token whose preceding frames are certain to be in a pool snapshot
// taken AFTER this call: the feeder stores the token only once every
// earlier frame on the connection has been fed. WriteCheckpoint calls
// this before Pool.Checkpoint and notifies each connection once the
// file is durable; the cluster replicator calls it before
// Pool.Checkpoint and notifies once the follower has acknowledged the
// round.
func (s *Server) CaptureDurableMarks() []DurableMark {
	s.mu.Lock()
	defer s.mu.Unlock()
	marks := make([]DurableMark, 0, len(s.conns))
	for c := range s.conns {
		if v := c.ackedPing.Load(); v != 0 {
			marks = append(marks, DurableMark{c: c, token: v - 1})
		}
	}
	return marks
}

// FeedBarrier runs fn while every ingest feeder is excluded from the
// OwnerCheck-and-feed critical section: no batch admission decision is
// in flight while fn runs, and decisions made after it observe
// everything fn changed. The cluster tier wraps "flip ownership, then
// Pool.Detach the stream" in one barrier so a batch admitted under the
// old ownership can never re-materialize a detached stream. fn must
// not feed the pool (it would self-deadlock) and should be brief — the
// ingest plane is paused for its duration.
func (s *Server) FeedBarrier(fn func()) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	fn()
}

// addConn registers a live connection for shutdown teardown. It
// refuses (returning false) once Shutdown has begun, closing the race
// where a connection accepted just before the listener closed would
// register after the teardown sweep and never be torn down.
func (s *Server) addConn(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// removeConn forgets a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// subscribe replaces c's subscription with keys (empty = all streams).
func (s *Server) subscribe(c *conn, keys []uint64) {
	s.subMu.Lock()
	s.dropSubsLocked(c)
	if len(keys) == 0 {
		s.subAll[c] = struct{}{}
		c.subAll = true
	} else {
		c.subKeys = append(c.subKeys[:0], keys...)
		for _, k := range c.subKeys {
			m := s.subByKey[k]
			if m == nil {
				m = make(map[*conn]struct{})
				s.subByKey[k] = m
			}
			m[c] = struct{}{}
		}
	}
	s.subCount.Add(1)
	s.subMu.Unlock()
}

// unsubscribe removes c's subscription at teardown.
func (s *Server) unsubscribe(c *conn) {
	s.subMu.Lock()
	s.dropSubsLocked(c)
	s.subMu.Unlock()
}

// dropSubsLocked removes c from every subscription index; caller holds
// subMu exclusively.
func (s *Server) dropSubsLocked(c *conn) {
	had := c.subAll || len(c.subKeys) > 0
	if c.subAll {
		delete(s.subAll, c)
		c.subAll = false
	}
	for _, k := range c.subKeys {
		if m := s.subByKey[k]; m != nil {
			delete(m, c)
			if len(m) == 0 {
				delete(s.subByKey, k)
			}
		}
	}
	c.subKeys = c.subKeys[:0]
	if had {
		s.subCount.Add(-1)
	}
}

// streamObserver is the pool's per-stream observer factory: every
// transition of stream key is published to subscribed connections.
func (s *Server) streamObserver(key uint64) dpd.Observer {
	return dpd.ObserverFuncs{
		Lock:         func(e *dpd.Event) { s.publish(key, e) },
		PeriodChange: func(e *dpd.Event) { s.publish(key, e) },
		SegmentStart: func(e *dpd.Event) { s.publish(key, e) },
		Unlock:       func(e *dpd.Event) { s.publish(key, e) },
	}
}

// publish fans one stream transition out to subscribers. It runs on a
// shard worker with the shard lock held, so it must stay cheap and must
// never block: the no-subscriber fast path is one atomic load, and
// enqueueing to a full subscriber disconnects that subscriber (slow
// consumer) instead of waiting.
func (s *Server) publish(key uint64, e *dpd.Event) {
	if s.subCount.Load() == 0 {
		return
	}
	s.subMu.RLock()
	for c := range s.subAll {
		c.sendEvent(key, e)
	}
	if m := s.subByKey[key]; m != nil {
		for c := range m {
			c.sendEvent(key, e)
		}
	}
	s.subMu.RUnlock()
}
