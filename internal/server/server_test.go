package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dpd"
	"dpd/internal/faults"
	"dpd/internal/wire"
)

// newTestServer builds and starts a server on loopback ephemeral ports,
// wiring cleanup-safe logging.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.IngestAddr == "" {
		cfg.IngestAddr = "127.0.0.1:0"
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {} // tests assert behavior, not log text
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = time.Hour // deterministic: only explicit/final checkpoints
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return s
}

// shutdown stops a test server within a bounded context.
func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// client is a test-side ingest connection.
type client struct {
	t   *testing.T
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	enc Enc
	buf []byte
}

// dialClient connects and sends the preamble.
func dialClient(t *testing.T, s *Server) *client {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := &client{t: t, nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	if _, err := c.bw.Write(AppendPreamble(nil)); err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *client) close() { c.nc.Close() }

// sendEvents stages one event batch frame.
func (c *client) sendEvents(key uint64, vs []int64) {
	c.t.Helper()
	c.buf = c.enc.AppendEventBatch(c.buf[:0], key, vs)
	if _, err := c.bw.Write(c.buf); err != nil {
		c.t.Fatal(err)
	}
}

// sendMagnitudes stages one magnitude batch frame.
func (c *client) sendMagnitudes(key uint64, vs []float64) {
	c.t.Helper()
	c.buf = c.enc.AppendMagnitudeBatch(c.buf[:0], key, vs)
	if _, err := c.bw.Write(c.buf); err != nil {
		c.t.Fatal(err)
	}
}

// subscribe stages a subscription frame and flushes it.
func (c *client) subscribe(keys ...uint64) {
	c.t.Helper()
	c.buf = c.enc.AppendSubscribe(c.buf[:0], keys)
	if _, err := c.bw.Write(c.buf); err != nil {
		c.t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

// barrier flushes and pings, then reads frames until the matching pong,
// returning any event frames that arrived before it.
func (c *client) barrier(token uint64) []ServerFrame {
	c.t.Helper()
	c.buf = c.enc.AppendPing(c.buf[:0], token)
	if _, err := c.bw.Write(c.buf); err != nil {
		c.t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
	var evs []ServerFrame
	for {
		sf := c.readFrame()
		switch sf.Kind {
		case KindPong:
			if sf.Token != token {
				c.t.Fatalf("pong token %d, want %d", sf.Token, token)
			}
			return evs
		case KindEvent:
			evs = append(evs, sf)
		case KindError:
			c.t.Fatalf("server error %s: %s", sf.Code, sf.Msg)
		}
	}
}

// readFrame reads one server→client frame.
func (c *client) readFrame() ServerFrame {
	c.t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := wire.ReadFrame(c.br, MaxFrame, nil)
	if err != nil {
		c.t.Fatalf("reading server frame: %v", err)
	}
	var sf ServerFrame
	if err := DecodeServerFrame(payload, &sf); err != nil {
		c.t.Fatal(err)
	}
	return sf
}

// httpGet fetches a query-plane URL and decodes the JSON body into out.
func httpGet(t *testing.T, s *Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get("http://" + s.HTTPAddr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestServerIngestAndQuery drives the full surface once: binary ingest
// with a ping barrier, then every query/control endpoint against the
// resulting pool state, including a live rebalance mid-traffic.
func TestServerIngestAndQuery(t *testing.T) {
	s := newTestServer(t, Config{
		Pool: dpd.PoolConfig{Shards: 3, Detector: dpd.Config{Window: 64}},
	})
	defer shutdown(t, s)

	const (
		streams = 10
		samples = 256
		period  = 4
	)
	c := dialClient(t, s)
	defer c.close()
	vs := make([]int64, 64)
	for t0 := 0; t0 < samples; t0 += len(vs) {
		for k := 0; k < streams; k++ {
			for i := range vs {
				vs[i] = int64((t0 + i) % period)
			}
			c.sendEvents(uint64(k), vs)
		}
	}
	c.barrier(1)

	// healthz
	var hz struct {
		Status  string `json:"status"`
		Streams int    `json:"streams"`
	}
	if code := httpGet(t, s, "/healthz", &hz); code != 200 || hz.Status != "ok" || hz.Streams != streams {
		t.Fatalf("healthz = %d %+v", code, hz)
	}

	// one stream: locked on the pattern, predicting
	var st streamJSON
	if code := httpGet(t, s, "/streams/3", &st); code != 200 {
		t.Fatalf("GET /streams/3 = %d", code)
	}
	if st.Key != 3 || st.Samples != samples || !st.Locked || st.Period != period || !st.PredictedValid {
		t.Fatalf("stream 3 = %+v, want locked period %d over %d samples", st, period, samples)
	}
	if code := httpGet(t, s, "/streams/999", nil); code != 404 {
		t.Fatalf("GET /streams/999 = %d, want 404", code)
	}
	if code := httpGet(t, s, "/streams/notakey", nil); code != 400 {
		t.Fatalf("GET /streams/notakey = %d, want 400", code)
	}

	// paged enumeration: 4 sorted, disjoint pages of ≤3
	var got []uint64
	after := ""
	for {
		var page streamsPage
		url := "/streams?limit=3" + after
		if code := httpGet(t, s, url, &page); code != 200 {
			t.Fatalf("GET %s = %d", url, code)
		}
		for _, st := range page.Streams {
			got = append(got, st.Key)
		}
		if page.NextAfter == nil {
			break
		}
		after = fmt.Sprintf("&after=%d", *page.NextAfter)
	}
	if len(got) != streams {
		t.Fatalf("paged enumeration returned %d streams: %v", len(got), got)
	}
	for i, k := range got {
		if k != uint64(i) {
			t.Fatalf("page order wrong at %d: %v", i, got)
		}
	}

	// metrics
	var m MetricsSnapshot
	if code := httpGet(t, s, "/metrics", &m); code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	if m.SamplesTotal != streams*samples || m.BatchesTotal != streams*samples/64 {
		t.Fatalf("metrics samples=%d batches=%d, want %d/%d", m.SamplesTotal, m.BatchesTotal, streams*samples, streams*samples/64)
	}
	if m.ConnsActive != 1 || m.PingsTotal != 1 || m.Streams != streams || m.Shards != 3 || len(m.ShardOccupancy) != 3 {
		t.Fatalf("metrics = %+v", m)
	}

	// live rebalance, then traffic continues and state is intact
	resp, err := http.Post("http://"+s.HTTPAddr()+"/rebalance?shards=5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /rebalance = %d", resp.StatusCode)
	}
	for k := 0; k < streams; k++ {
		for i := range vs {
			vs[i] = int64((samples + i) % period)
		}
		c.sendEvents(uint64(k), vs)
	}
	c.barrier(2)
	if code := httpGet(t, s, "/streams/3", &st); code != 200 {
		t.Fatalf("GET /streams/3 after rebalance = %d", code)
	}
	if st.Samples != samples+64 || !st.Locked || st.Period != period {
		t.Fatalf("stream 3 after rebalance = %+v", st)
	}
	if code := httpGet(t, s, "/metrics", &m); code != 200 || m.Shards != 5 || len(m.ShardOccupancy) != 5 {
		t.Fatalf("metrics after rebalance: code=%d %+v", code, m)
	}
	resp, err = http.Post("http://"+s.HTTPAddr()+"/rebalance?shards=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("POST /rebalance?shards=0 = %d, want 400", resp.StatusCode)
	}
}

// engineConfigs is the four-engine matrix of the differential test.
func engineConfigs() map[string]func() dpd.Detector {
	return map[string]func() dpd.Detector{
		"event":      func() dpd.Detector { return dpd.Must(dpd.WithWindow(64)) },
		"magnitude":  func() dpd.Detector { return dpd.Must(dpd.WithMagnitude(0), dpd.WithWindow(64)) },
		"multiscale": func() dpd.Detector { return dpd.Must(dpd.WithLadder(8, 64)) },
		"adaptive":   func() dpd.Detector { return dpd.Must(dpd.WithAdaptive(dpd.DefaultAdaptivePolicy())) },
	}
}

// traceValue is the synthetic trace: per-stream periodic values with
// per-key period and phase so streams are not interchangeable.
func traceValue(key uint64, t int) int64 {
	p := 4 + int(key%5)
	return int64((t+int(key))%p) + int64(key)*100
}

// parsePoolCheckpoint splits a pool checkpoint stream into per-stream
// engine-state bytes, keyed by stream key.
func parsePoolCheckpoint(t *testing.T, data []byte) map[uint64][]byte {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(data))
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if string(hdr[:4]) != "DPDP" {
		t.Fatalf("bad pool checkpoint magic %q", hdr[:4])
	}
	states := map[uint64][]byte{}
	for {
		payload, err := wire.ReadFrame(br, 1<<30, nil)
		if err != nil {
			t.Fatal(err)
		}
		if payload == nil {
			return states
		}
		var d wire.Dec
		d.Reset(payload)
		key := d.Uvarint()
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
		states[key] = append([]byte{}, payload[d.Offset():]...)
	}
}

// TestKillRestartDifferential is the acceptance differential (ISSUE 5):
// for every engine, a server killed mid-trace (graceful SIGTERM path:
// drain, quiesce, final checkpoint) and restarted from its checkpoint
// must continue every stream byte-identically — the restarted server's
// final per-stream engine state equals that of an uninterrupted
// reference pool fed the same trace, byte for byte.
func TestKillRestartDifferential(t *testing.T) {
	const (
		streams = 12
		samples = 512
		batch   = 64
		shards  = 3
	)
	for name, factory := range engineConfigs() {
		t.Run(name, func(t *testing.T) {
			poolCfg := dpd.PoolConfig{Shards: shards, NewDetector: factory}

			// Uninterrupted reference: the same per-stream sample order.
			ref, err := dpd.NewPool(poolCfg)
			if err != nil {
				t.Fatal(err)
			}
			refBatch := make([]dpd.KeyedSample, 0, batch)
			for t0 := 0; t0 < samples; t0 += batch {
				for k := 0; k < streams; k++ {
					refBatch = refBatch[:0]
					for i := 0; i < batch; i++ {
						v := traceValue(uint64(k), t0+i)
						refBatch = append(refBatch, dpd.KeyedSample{Key: uint64(k), Value: v, Magnitude: float64(v)})
					}
					ref.FeedBatch(refBatch)
				}
			}
			ref.Close()
			var refCkpt bytes.Buffer
			if err := ref.Checkpoint(&refCkpt); err != nil {
				t.Fatal(err)
			}
			refStates := parsePoolCheckpoint(t, refCkpt.Bytes())

			dir := t.TempDir()
			feed := func(s *Server, from, to int) {
				c := dialClient(t, s)
				defer c.close()
				evs := make([]int64, batch)
				mags := make([]float64, batch)
				for t0 := from; t0 < to; t0 += batch {
					for k := 0; k < streams; k++ {
						for i := range evs {
							v := traceValue(uint64(k), t0+i)
							evs[i], mags[i] = v, float64(v)
						}
						if name == "magnitude" {
							c.sendMagnitudes(uint64(k), mags)
						} else {
							c.sendEvents(uint64(k), evs)
						}
					}
				}
				c.barrier(uint64(to))
			}

			// First run: half the trace, then the SIGTERM path.
			s1 := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: dir})
			feed(s1, 0, samples/2)
			shutdown(t, s1)

			// Restart: restore from the checkpoint, finish the trace.
			s2 := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: dir})
			var m MetricsSnapshot
			if code := httpGet(t, s2, "/metrics", &m); code != 200 {
				t.Fatalf("GET /metrics = %d", code)
			}
			if m.RestoredStreams != streams {
				t.Fatalf("restored %d streams, want %d", m.RestoredStreams, streams)
			}
			feed(s2, samples/2, samples)

			// Per-stream Stat must match the uninterrupted pool exactly.
			for k := 0; k < streams; k++ {
				want, ok := ref.Stat(uint64(k))
				if !ok {
					t.Fatalf("reference lost stream %d", k)
				}
				got, ok := s2.Pool().Stat(uint64(k))
				if !ok {
					t.Fatalf("restarted server lost stream %d", k)
				}
				if got.Stat != want.Stat {
					t.Fatalf("stream %d diverged after restart:\n got %+v\nwant %+v", k, got.Stat, want.Stat)
				}
			}

			// And the serialized engine state must be byte-identical.
			shutdown(t, s2)
			seqs, err := listCheckpoints(faults.OS{}, dir)
			if err != nil || len(seqs) == 0 {
				t.Fatalf("no final checkpoint: %v", err)
			}
			data, err := os.ReadFile(filepath.Join(dir, checkpointName(seqs[0])))
			if err != nil {
				t.Fatal(err)
			}
			gotStates := parsePoolCheckpoint(t, data)
			if len(gotStates) != len(refStates) {
				t.Fatalf("restarted checkpoint has %d streams, reference %d", len(gotStates), len(refStates))
			}
			for k, want := range refStates {
				if !bytes.Equal(gotStates[k], want) {
					t.Fatalf("engine %s stream %d: restarted state differs from uninterrupted state (%d vs %d bytes)",
						name, k, len(gotStates[k]), len(want))
				}
			}
		})
	}
}

// TestRestoreFallsBackPastCorrupt: boot skips a corrupt newest
// checkpoint (counting the fallback) and restores the older valid one.
func TestRestoreFallsBackPastCorrupt(t *testing.T) {
	dir := t.TempDir()
	poolCfg := dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}}

	s1 := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: dir})
	c := dialClient(t, s1)
	vs := make([]int64, 96)
	for i := range vs {
		vs[i] = int64(i % 3)
	}
	c.sendEvents(11, vs)
	c.barrier(1)
	c.close()
	shutdown(t, s1)

	// A "newer" checkpoint that is garbage, and one that is truncated.
	if err := os.WriteFile(filepath.Join(dir, checkpointName(900)), []byte("DPDPgarbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointName(901)), []byte("not even magic"), 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{Pool: poolCfg, CheckpointDir: dir})
	defer shutdown(t, s2)
	var m MetricsSnapshot
	if code := httpGet(t, s2, "/metrics", &m); code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	if m.RestoreFallbacks != 2 {
		t.Fatalf("restore fallbacks = %d, want 2", m.RestoreFallbacks)
	}
	if m.RestoredStreams != 1 {
		t.Fatalf("restored streams = %d, want 1", m.RestoredStreams)
	}
	var st streamJSON
	if code := httpGet(t, s2, "/streams/11", &st); code != 200 || st.Samples != uint64(len(vs)) {
		t.Fatalf("stream 11 after fallback restore: code=%d %+v", code, st)
	}
	// The next checkpoint must not collide with the garbage sequence.
	if path, err := s2.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	} else if want := checkpointName(902); filepath.Base(path) != want {
		t.Fatalf("next checkpoint = %s, want %s", filepath.Base(path), want)
	}
}

// TestProtocolErrorReply: hostile bytes get a typed error frame back,
// then the connection closes — the server never just drops the socket.
func TestProtocolErrorReply(t *testing.T) {
	s := newTestServer(t, Config{Pool: dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 32}}})
	defer shutdown(t, s)

	send := func(t *testing.T, raw []byte) ServerFrame {
		t.Helper()
		nc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := nc.Write(raw); err != nil {
			t.Fatal(err)
		}
		// Half-close: "that is all the bytes there will be" — which is
		// what turns a short frame into a detectable truncation rather
		// than a stalled read.
		nc.(*net.TCPConn).CloseWrite()
		br := bufio.NewReader(nc)
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		payload, err := wire.ReadFrame(br, MaxFrame, nil)
		if err != nil {
			t.Fatalf("expected an error frame, got %v", err)
		}
		var sf ServerFrame
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindError {
			t.Fatalf("expected error frame, got kind %d", sf.Kind)
		}
		// After the error frame the server closes: EOF, not silence.
		if _, err := br.ReadByte(); err != io.EOF {
			t.Fatalf("after error frame: %v, want EOF", err)
		}
		return sf
	}

	t.Run("bad preamble", func(t *testing.T) {
		sf := send(t, []byte("NOPE\x01"))
		if sf.Code != CodeBadPreamble {
			t.Fatalf("code = %s, want %s", sf.Code, CodeBadPreamble)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		sf := send(t, []byte("DPDI\x63"))
		if sf.Code != CodeBadPreamble {
			t.Fatalf("code = %s, want %s", sf.Code, CodeBadPreamble)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		raw := AppendPreamble(nil)
		raw = wire.AppendFrame(raw, []byte{0x7F, 1, 2, 3})
		sf := send(t, raw)
		if sf.Code != CodeUnknownKind {
			t.Fatalf("code = %s, want %s", sf.Code, CodeUnknownKind)
		}
	})
	t.Run("truncated batch", func(t *testing.T) {
		var enc Enc
		frame := enc.AppendEventBatch(nil, 5, []int64{1, 2, 3, 4})
		raw := AppendPreamble(nil)
		raw = append(raw, frame[:len(frame)-2]...) // cut the frame body short
		sf := send(t, raw)
		if sf.Code != CodeBadFrame {
			t.Fatalf("code = %s, want %s", sf.Code, CodeBadFrame)
		}
	})
	t.Run("frame too large", func(t *testing.T) {
		raw := AppendPreamble(nil)
		raw = wire.AppendUvarint(raw, MaxFrame+1)
		sf := send(t, raw)
		if sf.Code != CodeFrameTooLarge {
			t.Fatalf("code = %s, want %s", sf.Code, CodeFrameTooLarge)
		}
	})

	// The hostile connections above never corrupted server state.
	var hz struct {
		Status string `json:"status"`
	}
	if code := httpGet(t, s, "/healthz", &hz); code != 200 || hz.Status != "ok" {
		t.Fatalf("healthz after hostile traffic = %d %+v", code, hz)
	}
}

// TestSubscribeEvents: a subscribed connection receives exactly the
// transitions a local observer sees for its keys, and nothing for
// other keys.
func TestSubscribeEvents(t *testing.T) {
	s := newTestServer(t, Config{Pool: dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 16}}})
	defer shutdown(t, s)

	sub := dialClient(t, s)
	defer sub.close()
	sub.subscribe(5)
	// The subscription frame is applied by the feeder in order, so a
	// barrier guarantees it is active before traffic starts.
	sub.barrier(1)

	// Reference: a local detector with an observer, fed the same values.
	type obsEvent struct {
		kind   dpd.EventKind
		T      uint64
		period int
	}
	var want []obsEvent
	ref := dpd.Must(dpd.WithWindow(16), dpd.WithObserver(dpd.ObserverFuncs{
		Lock:         func(e *dpd.Event) { want = append(want, obsEvent{e.Kind, e.T, e.Period}) },
		PeriodChange: func(e *dpd.Event) { want = append(want, obsEvent{e.Kind, e.T, e.Period}) },
		SegmentStart: func(e *dpd.Event) { want = append(want, obsEvent{e.Kind, e.T, e.Period}) },
		Unlock:       func(e *dpd.Event) { want = append(want, obsEvent{e.Kind, e.T, e.Period}) },
	}))

	feeder := dialClient(t, s)
	defer feeder.close()
	vs := make([]int64, 64)
	for i := range vs {
		vs[i] = int64(i % 3)
		ref.Feed(dpd.EventSample(vs[i]))
	}
	feeder.sendEvents(5, vs)
	feeder.sendEvents(6, vs) // not subscribed: must produce no frames for sub
	feeder.barrier(2)

	if len(want) == 0 {
		t.Fatal("reference observer saw no events; bad trace")
	}
	// Collect the subscriber's frames: everything queued before our own
	// barrier pong.
	var got []obsEvent
	evs := sub.barrier(3)
	for _, sf := range evs {
		if sf.Key != 5 {
			t.Fatalf("received event for unsubscribed key %d: %+v", sf.Key, sf)
		}
		got = append(got, obsEvent{sf.Event.Kind, sf.Event.T, sf.Event.Period})
	}
	if len(got) != len(want) {
		t.Fatalf("subscriber saw %d events, reference observer %d:\n got %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSlowConsumerDisconnect: a subscriber that never drains its event
// stream is disconnected with the slow-consumer reason instead of
// stalling ingest; the feeder keeps running.
func TestSlowConsumerDisconnect(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:         dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 16}},
		EventBuffer:  8,
		WriteTimeout: 200 * time.Millisecond,
	})
	defer shutdown(t, s)

	sub := dialClient(t, s)
	defer sub.close()
	sub.subscribe() // all streams
	sub.barrier(1)
	// From here on the subscriber never reads again.

	feeder := dialClient(t, s)
	defer feeder.close()
	vs := make([]int64, 512)
	deadline := time.Now().Add(20 * time.Second)
	var m MetricsSnapshot
	for round := 0; ; round++ {
		// Period-2 streams: a segment start (= one event frame) every
		// other sample, across 8 streams — the event volume overwhelms
		// the unread subscriber quickly.
		for k := 0; k < 8; k++ {
			for i := range vs {
				vs[i] = int64(i % 2)
			}
			feeder.sendEvents(uint64(k), vs)
		}
		feeder.barrier(uint64(round + 10))
		if code := httpGet(t, s, "/metrics", &m); code != 200 {
			t.Fatalf("GET /metrics = %d", code)
		}
		if m.Disconnects.SlowConsumer >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-consumer disconnect after %d rounds; metrics %+v", round+1, m)
		}
	}
	// Ingest survived the subscriber's demise.
	var st streamJSON
	if code := httpGet(t, s, "/streams/0", &st); code != 200 || !st.Locked || st.Period != 2 {
		t.Fatalf("feeder stream after slow-consumer disconnect: code=%d %+v", code, st)
	}
}

// TestGracefulTerminator: the zero-length frame ends a connection as a
// clean EOF, counted as such.
func TestGracefulTerminator(t *testing.T) {
	s := newTestServer(t, Config{Pool: dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 32}}})
	defer shutdown(t, s)
	c := dialClient(t, s)
	c.sendEvents(1, []int64{1, 2, 3})
	c.barrier(1)
	if err := wire.WriteFrame(c.bw, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// The server closes its side after the terminator; the barrier's
	// durable mark (applied-is-durable on a checkpoint-less server) may
	// still be in flight ahead of the EOF.
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		payload, err := wire.ReadFrame(c.br, MaxFrame, nil)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("after terminator: %v, want EOF", err)
		}
		var sf ServerFrame
		if err := DecodeServerFrame(payload, &sf); err != nil {
			t.Fatal(err)
		}
		if sf.Kind != KindDurable {
			t.Fatalf("unexpected frame kind %d after terminator", sf.Kind)
		}
	}
	c.close()
	var m MetricsSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := httpGet(t, s, "/metrics", &m); code != 200 {
			t.Fatalf("GET /metrics = %d", code)
		}
		if m.Disconnects.EOF >= 1 && m.ConnsActive == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clean EOF not recorded: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.SamplesTotal != 3 {
		t.Fatalf("samples_total = %d, want 3", m.SamplesTotal)
	}
}
