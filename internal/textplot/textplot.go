// Package textplot renders data series as ASCII plots so the experiment
// binaries can reproduce the paper's figures (CPU-usage traces, d(m)
// distance curves, segmented address streams) directly in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Options controls plot geometry.
type Options struct {
	// Width is the plot width in columns (default 72).
	Width int
	// Height is the plot height in rows (default 16).
	Height int
	// YLabel annotates the vertical axis.
	YLabel string
	// XLabel annotates the horizontal axis.
	XLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// Plot renders xs as a scatter/line plot. Long series are downsampled by
// taking the mean of each column's bucket; marks (sample indices) are
// drawn as '*' on a separate bottom row — the DPD segmentation marks of
// the paper's Figure 7.
func Plot(xs []float64, marks []int, opt Options) string {
	opt = opt.withDefaults()
	if len(xs) == 0 {
		return "(empty series)\n"
	}
	w, h := opt.Width, opt.Height

	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	// Column buckets.
	col := func(i int) int {
		c := i * w / len(xs)
		if c >= w {
			c = w - 1
		}
		return c
	}
	sums := make([]float64, w)
	counts := make([]int, w)
	for i, v := range xs {
		c := col(i)
		sums[c] += v
		counts[c]++
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	prevRow := -1
	for c := 0; c < w; c++ {
		if counts[c] == 0 {
			continue
		}
		v := sums[c] / float64(counts[c])
		frac := (v - lo) / (hi - lo)
		row := h - 1 - int(math.Round(frac*float64(h-1)))
		grid[row][c] = '#'
		// Connect vertically to the previous column for readability:
		// walk from this column's row toward the previous column's row.
		if prevRow >= 0 && prevRow != row {
			step := 1
			if prevRow < row {
				step = -1
			}
			for r := row + step; r != prevRow; r += step {
				if grid[r][c] == ' ' {
					grid[r][c] = '|'
				}
			}
		}
		prevRow = row
	}

	markRow := []byte(strings.Repeat(" ", w))
	for _, m := range marks {
		if m >= 0 && m < len(xs) {
			markRow[col(m)] = '*'
		}
	}

	var b strings.Builder
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opt.YLabel)
	}
	for r := 0; r < h; r++ {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.2f", hi)
		case h - 1:
			label = fmt.Sprintf("%8.2f", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", w))
	if len(marks) > 0 {
		fmt.Fprintf(&b, "%s  %s  (* = DPD period start)\n", strings.Repeat(" ", 8), string(markRow))
	}
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), opt.XLabel)
	}
	return b.String()
}

// Curve renders a DPD distance curve d(m) with the detected minimum
// highlighted, in the style of the paper's Figure 4.
func Curve(d []float64, bestLag int, opt Options) string {
	marks := []int{}
	if bestLag >= 1 && bestLag <= len(d) {
		marks = append(marks, bestLag-1)
	}
	clean := make([]float64, len(d))
	var last float64
	for i, v := range d {
		if math.IsNaN(v) {
			clean[i] = last
			continue
		}
		clean[i] = v
		last = v
	}
	return Plot(clean, marks, opt)
}

// Table renders rows as a column-aligned text table. The first row is the
// header; a separator line follows it.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	for c, w := range widths {
		if c > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}
