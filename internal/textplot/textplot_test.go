package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestPlotEmpty(t *testing.T) {
	if got := Plot(nil, nil, Options{}); !strings.Contains(got, "empty") {
		t.Fatalf("empty plot = %q", got)
	}
}

func TestPlotGeometry(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	got := Plot(xs, nil, Options{Width: 40, Height: 8})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// 8 data rows + axis row.
	if len(lines) != 9 {
		t.Fatalf("lines=%d, want 9:\n%s", len(lines), got)
	}
	for i, l := range lines[:8] {
		if !strings.Contains(l, "|") {
			t.Fatalf("row %d missing axis: %q", i, l)
		}
	}
}

func TestPlotShowsExtremes(t *testing.T) {
	xs := []float64{1, 16, 1, 16}
	got := Plot(xs, nil, Options{Width: 20, Height: 6})
	if !strings.Contains(got, "16.00") || !strings.Contains(got, "1.00") {
		t.Fatalf("missing y labels:\n%s", got)
	}
	if !strings.Contains(got, "#") {
		t.Fatal("no data glyphs plotted")
	}
}

func TestPlotConstantSeriesNoDivZero(t *testing.T) {
	xs := []float64{5, 5, 5}
	got := Plot(xs, nil, Options{Width: 10, Height: 4})
	if strings.Contains(got, "NaN") {
		t.Fatalf("NaN leaked:\n%s", got)
	}
}

func TestPlotMarksRow(t *testing.T) {
	xs := make([]float64, 50)
	got := Plot(xs, []int{0, 25, 49}, Options{Width: 50, Height: 4})
	if !strings.Contains(got, "*") {
		t.Fatalf("marks missing:\n%s", got)
	}
	if !strings.Contains(got, "period start") {
		t.Fatal("marks legend missing")
	}
	// Out-of-range marks must be ignored, not crash.
	_ = Plot(xs, []int{-5, 1000}, Options{Width: 50, Height: 4})
}

func TestPlotLabels(t *testing.T) {
	got := Plot([]float64{1, 2}, nil, Options{YLabel: "CPUs", XLabel: "time (ms)"})
	if !strings.Contains(got, "CPUs") || !strings.Contains(got, "time (ms)") {
		t.Fatalf("labels missing:\n%s", got)
	}
}

func TestCurveHandlesNaNPrefix(t *testing.T) {
	d := []float64{math.NaN(), math.NaN(), 0.5, 0.1, 0.6}
	got := Curve(d, 4, Options{Width: 20, Height: 4})
	if strings.Contains(got, "NaN") {
		t.Fatalf("NaN leaked:\n%s", got)
	}
	if !strings.Contains(got, "*") {
		t.Fatal("best-lag mark missing")
	}
}

func TestTableAlignment(t *testing.T) {
	got := Table([][]string{
		{"Appl.", "Len", "Periods"},
		{"apsi", "5762", "6"},
		{"hydro2d", "53814", "1, 24, 269"},
	})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	// Columns align: "5762" and "53814" start at the same offset.
	if strings.Index(lines[2], "5762") != strings.Index(lines[3], "53814") {
		t.Fatalf("columns misaligned:\n%s", got)
	}
}

func TestTableEmpty(t *testing.T) {
	if Table(nil) != "" {
		t.Fatal("empty table must render empty")
	}
}

func TestTableRaggedRows(t *testing.T) {
	got := Table([][]string{{"a"}, {"b", "c"}})
	if !strings.Contains(got, "c") {
		t.Fatalf("ragged row dropped:\n%s", got)
	}
}
