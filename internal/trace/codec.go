package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Text format:
//
//	# dpd-trace v1 event|cpu
//	# name: tomcatv
//	# interval_ns: 1000000        (cpu traces only)
//	<one decimal value per line>
//
// Binary format (little endian):
//
//	magic "DPDT" | version u8 | kind u8 (0 event, 1 cpu) |
//	nameLen u16 | name | interval_ns i64 (cpu only) |
//	count u64 | values (int64 for event, float64 bits for cpu)

const (
	textHeader  = "# dpd-trace v1"
	binaryMagic = "DPDT"
	kindEvent   = 0
	kindCPU     = 1
)

// WriteEventText writes an event trace in the text format.
func WriteEventText(w io.Writer, t *EventTrace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s event\n# name: %s\n", textHeader, t.Name)
	for _, v := range t.Values {
		fmt.Fprintf(bw, "%d\n", v)
	}
	return bw.Flush()
}

// WriteCPUText writes a CPU trace in the text format.
func WriteCPUText(w io.Writer, t *CPUTrace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s cpu\n# name: %s\n# interval_ns: %d\n", textHeader, t.Name, t.Interval.Nanoseconds())
	for _, v := range t.Samples {
		fmt.Fprintf(bw, "%g\n", v)
	}
	return bw.Flush()
}

// ReadText reads either trace kind from the text format, returning
// exactly one non-nil trace.
func ReadText(r io.Reader) (*EventTrace, *CPUTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("trace: empty input")
	}
	head := strings.TrimSpace(sc.Text())
	if !strings.HasPrefix(head, textHeader) {
		return nil, nil, fmt.Errorf("trace: bad header %q", head)
	}
	kind := strings.TrimSpace(strings.TrimPrefix(head, textHeader))
	name := ""
	interval := time.Duration(0)

	var ev *EventTrace
	var cpu *CPUTrace
	switch kind {
	case "event":
		ev = &EventTrace{}
	case "cpu":
		cpu = &CPUTrace{}
	default:
		return nil, nil, fmt.Errorf("trace: unknown kind %q", kind)
	}

	line := 1
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			meta := strings.TrimSpace(strings.TrimPrefix(s, "#"))
			switch {
			case strings.HasPrefix(meta, "name:"):
				name = strings.TrimSpace(strings.TrimPrefix(meta, "name:"))
			case strings.HasPrefix(meta, "interval_ns:"):
				ns, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(meta, "interval_ns:")), 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("trace: line %d: bad interval: %v", line, err)
				}
				interval = time.Duration(ns)
			}
			continue
		}
		if ev != nil {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: line %d: bad event value %q", line, s)
			}
			ev.Values = append(ev.Values, v)
		} else {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: line %d: bad cpu value %q", line, s)
			}
			cpu.Samples = append(cpu.Samples, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: read: %w", err)
	}
	if ev != nil {
		ev.Name = name
		return ev, nil, nil
	}
	cpu.Name = name
	cpu.Interval = interval
	return nil, cpu, nil
}

// WriteEventBinary writes an event trace in the binary format.
func WriteEventBinary(w io.Writer, t *EventTrace) error {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, kindEvent, t.Name, 0); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Values))); err != nil {
		return err
	}
	for _, v := range t.Values {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCPUBinary writes a CPU trace in the binary format.
func WriteCPUBinary(w io.Writer, t *CPUTrace) error {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, kindCPU, t.Name, t.Interval.Nanoseconds()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Samples))); err != nil {
		return err
	}
	for _, v := range t.Samples {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeBinaryHeader(w io.Writer, kind uint8, name string, intervalNS int64) error {
	if len(name) > 1<<16-1 {
		return fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	if _, err := w.Write([]byte(binaryMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil { // version
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, kind); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(name))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(name)); err != nil {
		return err
	}
	if kind == kindCPU {
		if err := binary.Write(w, binary.LittleEndian, intervalNS); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary reads either trace kind from the binary format.
func ReadBinary(r io.Reader) (*EventTrace, *CPUTrace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("trace: magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version, kind uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, nil, err
	}
	if version != 1 {
		return nil, nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &kind); err != nil {
		return nil, nil, err
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, nil, err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, nil, err
	}
	name := string(nameBuf)

	switch kind {
	case kindEvent:
		var count uint64
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, nil, err
		}
		if count > 1<<32 {
			return nil, nil, fmt.Errorf("trace: implausible event count %d", count)
		}
		t := &EventTrace{Name: name, Values: make([]int64, count)}
		for i := range t.Values {
			if err := binary.Read(br, binary.LittleEndian, &t.Values[i]); err != nil {
				return nil, nil, fmt.Errorf("trace: value %d: %w", i, err)
			}
		}
		return t, nil, nil
	case kindCPU:
		var intervalNS int64
		if err := binary.Read(br, binary.LittleEndian, &intervalNS); err != nil {
			return nil, nil, err
		}
		var count uint64
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, nil, err
		}
		if count > 1<<32 {
			return nil, nil, fmt.Errorf("trace: implausible sample count %d", count)
		}
		t := &CPUTrace{Name: name, Interval: time.Duration(intervalNS), Samples: make([]float64, count)}
		for i := range t.Samples {
			if err := binary.Read(br, binary.LittleEndian, &t.Samples[i]); err != nil {
				return nil, nil, fmt.Errorf("trace: sample %d: %w", i, err)
			}
		}
		return nil, t, nil
	default:
		return nil, nil, fmt.Errorf("trace: unknown kind %d", kind)
	}
}
