package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dpd/internal/wire"
)

// Text format:
//
//	# dpd-trace v1 event|cpu
//	# name: tomcatv
//	# interval_ns: 1000000        (cpu traces only)
//	<one decimal value per line>
//
// Binary format (little endian):
//
//	magic "DPDT" | version u8 | kind u8 (0 event, 1 cpu) |
//	nameLen u16 | name | interval_ns i64 (cpu only) |
//	count u64 | values (int64 for event, float64 bits for cpu)

const (
	textHeader  = "# dpd-trace v1"
	binaryMagic = "DPDT"
	kindEvent   = 0
	kindCPU     = 1
)

// WriteEventText writes an event trace in the text format.
func WriteEventText(w io.Writer, t *EventTrace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s event\n# name: %s\n", textHeader, t.Name)
	for _, v := range t.Values {
		fmt.Fprintf(bw, "%d\n", v)
	}
	return bw.Flush()
}

// WriteCPUText writes a CPU trace in the text format.
func WriteCPUText(w io.Writer, t *CPUTrace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s cpu\n# name: %s\n# interval_ns: %d\n", textHeader, t.Name, t.Interval.Nanoseconds())
	for _, v := range t.Samples {
		fmt.Fprintf(bw, "%g\n", v)
	}
	return bw.Flush()
}

// ReadText reads either trace kind from the text format, returning
// exactly one non-nil trace.
func ReadText(r io.Reader) (*EventTrace, *CPUTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("trace: empty input")
	}
	head := strings.TrimSpace(sc.Text())
	if !strings.HasPrefix(head, textHeader) {
		return nil, nil, fmt.Errorf("trace: bad header %q", head)
	}
	kind := strings.TrimSpace(strings.TrimPrefix(head, textHeader))
	name := ""
	interval := time.Duration(0)

	var ev *EventTrace
	var cpu *CPUTrace
	switch kind {
	case "event":
		ev = &EventTrace{}
	case "cpu":
		cpu = &CPUTrace{}
	default:
		return nil, nil, fmt.Errorf("trace: unknown kind %q", kind)
	}

	line := 1
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			meta := strings.TrimSpace(strings.TrimPrefix(s, "#"))
			switch {
			case strings.HasPrefix(meta, "name:"):
				name = strings.TrimSpace(strings.TrimPrefix(meta, "name:"))
			case strings.HasPrefix(meta, "interval_ns:"):
				ns, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(meta, "interval_ns:")), 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("trace: line %d: bad interval: %v", line, err)
				}
				interval = time.Duration(ns)
			}
			continue
		}
		if ev != nil {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: line %d: bad event value %q", line, s)
			}
			ev.Values = append(ev.Values, v)
		} else {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: line %d: bad cpu value %q", line, s)
			}
			cpu.Samples = append(cpu.Samples, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace: read: %w", err)
	}
	if ev != nil {
		ev.Name = name
		return ev, nil, nil
	}
	cpu.Name = name
	cpu.Interval = interval
	return nil, cpu, nil
}

// codecChunk is how many values are staged per Write / ReadFull on the
// binary bulk path: big enough to amortize call overhead, small enough
// that a trace far larger than memory still streams.
const codecChunk = 8192

// WriteEventBinary writes an event trace in the binary format.
func WriteEventBinary(w io.Writer, t *EventTrace) error {
	buf, err := appendBinaryHeader(nil, kindEvent, t.Name, 0)
	if err != nil {
		return err
	}
	buf = wire.AppendU64(buf, uint64(len(t.Values)))
	for vs := t.Values; len(vs) > 0; {
		n := min(len(vs), codecChunk)
		buf = wire.AppendI64s(buf, vs[:n])
		vs = vs[n:]
		if _, err := w.Write(buf); err != nil {
			return err
		}
		buf = buf[:0]
	}
	if len(buf) > 0 { // empty trace: header only
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteCPUBinary writes a CPU trace in the binary format.
func WriteCPUBinary(w io.Writer, t *CPUTrace) error {
	buf, err := appendBinaryHeader(nil, kindCPU, t.Name, t.Interval.Nanoseconds())
	if err != nil {
		return err
	}
	buf = wire.AppendU64(buf, uint64(len(t.Samples)))
	for vs := t.Samples; len(vs) > 0; {
		n := min(len(vs), codecChunk)
		buf = wire.AppendF64s(buf, vs[:n])
		vs = vs[n:]
		if _, err := w.Write(buf); err != nil {
			return err
		}
		buf = buf[:0]
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendBinaryHeader appends the common binary header using the wire
// idiom; the layout is fixed-width (not varint) for compatibility with
// the v1 files already on disk.
func appendBinaryHeader(buf []byte, kind uint8, name string, intervalNS int64) ([]byte, error) {
	if len(name) > 1<<16-1 {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	buf = append(buf, binaryMagic...)
	buf = wire.AppendU8(buf, 1) // version
	buf = wire.AppendU8(buf, kind)
	buf = wire.AppendU16(buf, uint16(len(name)))
	buf = append(buf, name...)
	if kind == kindCPU {
		buf = wire.AppendI64(buf, intervalNS)
	}
	return buf, nil
}

// readChunk fills scratch[:8*n] from r and returns a wire decoder over
// it.
func readChunk(r io.Reader, scratch []byte, n int) (*wire.Dec, []byte, error) {
	if cap(scratch) < 8*n {
		scratch = make([]byte, 8*n)
	}
	scratch = scratch[:8*n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return nil, nil, err
	}
	return wire.NewDec(scratch), scratch, nil
}

// ReadBinary reads either trace kind from the binary format.
func ReadBinary(r io.Reader) (*EventTrace, *CPUTrace, error) {
	br := bufio.NewReader(r)
	// Fixed prefix: magic, version, kind, name length.
	var prefix [8]byte
	if _, err := io.ReadFull(br, prefix[:]); err != nil {
		return nil, nil, fmt.Errorf("trace: header: %w", err)
	}
	d := wire.NewDec(prefix[:])
	if string(d.Bytes(4)) != binaryMagic {
		return nil, nil, fmt.Errorf("trace: bad magic %q", prefix[:4])
	}
	if version := d.U8(); version != 1 {
		return nil, nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	kind := d.U8()
	nameBuf := make([]byte, d.U16())
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, nil, fmt.Errorf("trace: name: %w", err)
	}
	name := string(nameBuf)

	var scratch []byte
	switch kind {
	case kindEvent:
		d, scratch, err := readChunk(br, scratch, 1)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: count: %w", err)
		}
		count := d.U64()
		if count > 1<<32 {
			return nil, nil, fmt.Errorf("trace: implausible event count %d", count)
		}
		t := &EventTrace{Name: name, Values: make([]int64, count)}
		for vs := t.Values; len(vs) > 0; {
			n := min(len(vs), codecChunk)
			d, scratch, err = readChunk(br, scratch, n)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: value %d: %w", len(t.Values)-len(vs), err)
			}
			d.I64s(vs[:n])
			vs = vs[n:]
		}
		return t, nil, nil
	case kindCPU:
		d, scratch, err := readChunk(br, scratch, 2)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: interval/count: %w", err)
		}
		intervalNS := d.I64()
		count := d.U64()
		if count > 1<<32 {
			return nil, nil, fmt.Errorf("trace: implausible sample count %d", count)
		}
		t := &CPUTrace{Name: name, Interval: time.Duration(intervalNS), Samples: make([]float64, count)}
		for vs := t.Samples; len(vs) > 0; {
			n := min(len(vs), codecChunk)
			d, scratch, err = readChunk(br, scratch, n)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: sample %d: %w", len(t.Samples)-len(vs), err)
			}
			d.F64s(vs[:n])
			vs = vs[n:]
		}
		return nil, t, nil
	default:
		return nil, nil, fmt.Errorf("trace: unknown kind %d", kind)
	}
}
