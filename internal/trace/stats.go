package trace

import (
	"fmt"
	"sort"
	"time"
)

// CPUStats summarizes a CPU-usage trace — the quantities one reads off
// the paper's Figure 3 by eye.
type CPUStats struct {
	// Samples is the trace length.
	Samples int
	// Duration is the covered time span.
	Duration time.Duration
	// Mean is the average number of active CPUs.
	Mean float64
	// Peak is the maximum observed CPU count.
	Peak float64
	// ParallelFraction is the fraction of samples with more than one
	// active CPU (parallelism open).
	ParallelFraction float64
	// IdleFraction is the fraction of samples with zero active CPUs.
	IdleFraction float64
}

// Stats computes summary statistics of the trace.
func (t *CPUTrace) Stats() CPUStats {
	s := CPUStats{Samples: len(t.Samples), Duration: t.Duration()}
	if len(t.Samples) == 0 {
		return s
	}
	parallel, idle := 0, 0
	for _, v := range t.Samples {
		s.Mean += v
		if v > s.Peak {
			s.Peak = v
		}
		if v > 1 {
			parallel++
		}
		if v == 0 {
			idle++
		}
	}
	s.Mean /= float64(len(t.Samples))
	s.ParallelFraction = float64(parallel) / float64(len(t.Samples))
	s.IdleFraction = float64(idle) / float64(len(t.Samples))
	return s
}

// String renders the statistics.
func (s CPUStats) String() string {
	return fmt.Sprintf("%d samples over %v: mean %.2f CPUs, peak %.0f, parallel %.0f%%, idle %.0f%%",
		s.Samples, s.Duration, s.Mean, s.Peak, 100*s.ParallelFraction, 100*s.IdleFraction)
}

// AddressFrequency is one entry of an event trace's address histogram.
type AddressFrequency struct {
	Addr  int64
	Count int
}

// EventStats summarizes an event trace.
type EventStats struct {
	// Events is the trace length.
	Events int
	// Distinct is the number of distinct addresses.
	Distinct int
	// Top holds the most frequent addresses, descending by count (ties
	// broken by address for determinism).
	Top []AddressFrequency
}

// Stats computes summary statistics; topN bounds the returned histogram
// (0 = all addresses).
func (t *EventTrace) Stats(topN int) EventStats {
	counts := make(map[int64]int)
	for _, v := range t.Values {
		counts[v]++
	}
	top := make([]AddressFrequency, 0, len(counts))
	for a, c := range counts {
		top = append(top, AddressFrequency{Addr: a, Count: c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Count != top[j].Count {
			return top[i].Count > top[j].Count
		}
		return top[i].Addr < top[j].Addr
	})
	if topN > 0 && len(top) > topN {
		top = top[:topN]
	}
	return EventStats{Events: len(t.Values), Distinct: len(counts), Top: top}
}
