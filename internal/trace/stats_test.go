package trace

import (
	"strings"
	"testing"
	"time"
)

func TestCPUStats(t *testing.T) {
	tr := &CPUTrace{Name: "x", Interval: time.Millisecond}
	for _, v := range []float64{0, 1, 16, 16, 1, 0, 8, 1} {
		tr.Append(v)
	}
	s := tr.Stats()
	if s.Samples != 8 {
		t.Fatalf("samples=%d", s.Samples)
	}
	if s.Peak != 16 {
		t.Fatalf("peak=%v", s.Peak)
	}
	if s.Mean != 43.0/8 {
		t.Fatalf("mean=%v", s.Mean)
	}
	if s.ParallelFraction != 3.0/8 {
		t.Fatalf("parallel=%v", s.ParallelFraction)
	}
	if s.IdleFraction != 2.0/8 {
		t.Fatalf("idle=%v", s.IdleFraction)
	}
	if s.Duration != 8*time.Millisecond {
		t.Fatalf("duration=%v", s.Duration)
	}
	if !strings.Contains(s.String(), "peak 16") {
		t.Fatalf("String=%q", s.String())
	}
}

func TestCPUStatsEmpty(t *testing.T) {
	tr := &CPUTrace{Interval: time.Millisecond}
	s := tr.Stats()
	if s.Samples != 0 || s.Mean != 0 || s.Peak != 0 {
		t.Fatalf("empty stats=%+v", s)
	}
}

func TestEventStatsHistogram(t *testing.T) {
	tr := &EventTrace{Values: []int64{5, 5, 5, 7, 7, 9}}
	s := tr.Stats(0)
	if s.Events != 6 || s.Distinct != 3 {
		t.Fatalf("stats=%+v", s)
	}
	if s.Top[0].Addr != 5 || s.Top[0].Count != 3 {
		t.Fatalf("top=%+v", s.Top)
	}
	if s.Top[2].Addr != 9 || s.Top[2].Count != 1 {
		t.Fatalf("top=%+v", s.Top)
	}
}

func TestEventStatsTopNAndTies(t *testing.T) {
	tr := &EventTrace{Values: []int64{3, 1, 2, 1, 3, 2}}
	s := tr.Stats(2)
	if len(s.Top) != 2 {
		t.Fatalf("topN not applied: %+v", s.Top)
	}
	// All counts equal: ties break by ascending address.
	if s.Top[0].Addr != 1 || s.Top[1].Addr != 2 {
		t.Fatalf("tie break wrong: %+v", s.Top)
	}
}

func TestEventStatsDeterministic(t *testing.T) {
	tr := &EventTrace{Values: []int64{10, 20, 30, 10, 20, 30}}
	a := tr.Stats(0)
	b := tr.Stats(0)
	for i := range a.Top {
		if a.Top[i] != b.Top[i] {
			t.Fatal("nondeterministic histogram order")
		}
	}
}
