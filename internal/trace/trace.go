// Package trace defines the data-stream containers and codecs of the
// evaluation: event traces (sequences of parallel-loop addresses, the
// input of Table 2 / Figure 7), CPU-usage traces (sampled processor
// counts, the input of Figures 3/4), and a fixed-interval sampler that
// turns a continuously valued signal into a CPU trace.
//
// The on-disk formats are deliberately simple — a line-oriented text
// format with '#' metadata headers and a length-prefixed binary format —
// so traces can be produced by the simulator, inspected by hand, and
// replayed through the overhead benchmark exactly as the paper's
// synthetic benchmark replays recorded application traces (§6.3).
package trace

import (
	"fmt"
	"time"
)

// EventTrace is a sequence of event samples (e.g. encapsulated
// parallel-loop function addresses in call order).
type EventTrace struct {
	// Name identifies the originating application (e.g. "tomcatv").
	Name string
	// Values are the event samples in stream order.
	Values []int64
}

// Len returns the number of events.
func (t *EventTrace) Len() int { return len(t.Values) }

// Append adds one event.
func (t *EventTrace) Append(v int64) { t.Values = append(t.Values, v) }

// Clone returns a deep copy.
func (t *EventTrace) Clone() *EventTrace {
	vals := make([]int64, len(t.Values))
	copy(vals, t.Values)
	return &EventTrace{Name: t.Name, Values: vals}
}

// CPUTrace is a fixed-interval sampling of the number of CPUs in use
// (paper Figure 3: 1 ms sampling of a 16-CPU run).
type CPUTrace struct {
	// Name identifies the originating application (e.g. "ft").
	Name string
	// Interval is the sampling period.
	Interval time.Duration
	// Samples are the CPU counts, one per interval.
	Samples []float64
}

// Len returns the number of samples.
func (t *CPUTrace) Len() int { return len(t.Samples) }

// Duration returns the covered wall-clock span.
func (t *CPUTrace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Interval
}

// Append adds one sample.
func (t *CPUTrace) Append(v float64) { t.Samples = append(t.Samples, v) }

// Clone returns a deep copy.
func (t *CPUTrace) Clone() *CPUTrace {
	s := make([]float64, len(t.Samples))
	copy(s, t.Samples)
	return &CPUTrace{Name: t.Name, Interval: t.Interval, Samples: s}
}

// Validate checks basic well-formedness.
func (t *CPUTrace) Validate() error {
	if t.Interval <= 0 {
		return fmt.Errorf("trace: non-positive sampling interval %v", t.Interval)
	}
	for i, v := range t.Samples {
		if v < 0 {
			return fmt.Errorf("trace: negative CPU count %v at sample %d", v, i)
		}
	}
	return nil
}

// Sampler converts a continuously valued signal into fixed-interval
// samples. Observe is called with monotonically non-decreasing
// timestamps; the value in force at each sampling instant is recorded
// (zero-order hold), exactly like the 1 ms CPU-usage sampling in the
// paper's NANOS environment.
type Sampler struct {
	interval time.Duration
	next     time.Duration
	current  float64
	started  bool
	out      *CPUTrace
}

// NewSampler returns a sampler emitting into a fresh CPUTrace.
func NewSampler(name string, interval time.Duration) *Sampler {
	if interval <= 0 {
		panic(fmt.Sprintf("trace: non-positive sampling interval %v", interval))
	}
	return &Sampler{
		interval: interval,
		out:      &CPUTrace{Name: name, Interval: interval},
	}
}

// Observe records that the signal takes value v at time now. Sampling
// instants in (prev, now] emit the value previously in force. Timestamps
// must not decrease; a violation panics, because out-of-order observation
// indicates a simulator bug and would silently corrupt the trace.
func (s *Sampler) Observe(now time.Duration, v float64) {
	if s.started && now+s.interval < s.next {
		panic(fmt.Sprintf("trace: non-monotonic observation at %v (next sample %v)", now, s.next))
	}
	for s.next <= now {
		s.out.Append(s.current)
		s.next += s.interval
	}
	s.current = v
	s.started = true
}

// Finish flushes sampling instants up to and including `end` and returns
// the trace.
func (s *Sampler) Finish(end time.Duration) *CPUTrace {
	for s.next <= end {
		s.out.Append(s.current)
		s.next += s.interval
	}
	return s.out
}

// Trace returns the trace accumulated so far without flushing.
func (s *Sampler) Trace() *CPUTrace { return s.out }
