package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEventTraceBasics(t *testing.T) {
	tr := &EventTrace{Name: "x"}
	tr.Append(10)
	tr.Append(20)
	if tr.Len() != 2 {
		t.Fatalf("Len=%d", tr.Len())
	}
	c := tr.Clone()
	c.Values[0] = 99
	if tr.Values[0] != 10 {
		t.Fatal("Clone aliases original")
	}
}

func TestCPUTraceDurationAndValidate(t *testing.T) {
	tr := &CPUTrace{Name: "ft", Interval: time.Millisecond}
	for i := 0; i < 250; i++ {
		tr.Append(float64(i % 16))
	}
	if tr.Duration() != 250*time.Millisecond {
		t.Fatalf("Duration=%v", tr.Duration())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Samples[3] = -1
	if err := tr.Validate(); err == nil {
		t.Fatal("negative CPU count accepted")
	}
	bad := &CPUTrace{Interval: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestSamplerZeroOrderHold(t *testing.T) {
	s := NewSampler("test", time.Millisecond)
	// Signal: 4 CPUs during [0,2.5ms), then 16 until 5ms.
	s.Observe(0, 4)
	s.Observe(2500*time.Microsecond, 16)
	tr := s.Finish(5 * time.Millisecond)
	// t=0 fires before any value is in force (0); t=1,2 ms hold 4; the
	// change to 16 at 2.5 ms is in force from the t=3 ms instant onward.
	want := []float64{0, 4, 4, 16, 16, 16}
	if len(tr.Samples) != len(want) {
		t.Fatalf("samples=%v, want %v", tr.Samples, want)
	}
	for i := range want {
		if tr.Samples[i] != want[i] {
			t.Fatalf("sample[%d]=%v, want %v (all=%v)", i, tr.Samples[i], want[i], tr.Samples)
		}
	}
}

func TestSamplerManyObservationsPerSlot(t *testing.T) {
	s := NewSampler("test", time.Millisecond)
	// Several value changes inside one slot: the value in force at the
	// sampling instant is the last one observed before it.
	s.Observe(100*time.Microsecond, 1)
	s.Observe(200*time.Microsecond, 2)
	s.Observe(900*time.Microsecond, 3)
	tr := s.Finish(time.Millisecond)
	if len(tr.Samples) != 2 || tr.Samples[1] != 3 {
		t.Fatalf("samples=%v, want [0 3]", tr.Samples)
	}
}

func TestSamplerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewSampler("x", 0)
}

func TestTextRoundTripEvent(t *testing.T) {
	in := &EventTrace{Name: "tomcatv", Values: []int64{0x1000, 0x2000, -5, 0}}
	var buf bytes.Buffer
	if err := WriteEventText(&buf, in); err != nil {
		t.Fatal(err)
	}
	ev, cpu, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != nil {
		t.Fatal("event trace decoded as cpu")
	}
	if ev.Name != "tomcatv" || len(ev.Values) != 4 {
		t.Fatalf("decoded %+v", ev)
	}
	for i, v := range in.Values {
		if ev.Values[i] != v {
			t.Fatalf("value[%d]=%d, want %d", i, ev.Values[i], v)
		}
	}
}

func TestTextRoundTripCPU(t *testing.T) {
	in := &CPUTrace{Name: "ft", Interval: time.Millisecond, Samples: []float64{1, 4.5, 16, 0.25}}
	var buf bytes.Buffer
	if err := WriteCPUText(&buf, in); err != nil {
		t.Fatal(err)
	}
	ev, cpu, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ev != nil {
		t.Fatal("cpu trace decoded as event")
	}
	if cpu.Name != "ft" || cpu.Interval != time.Millisecond {
		t.Fatalf("decoded %+v", cpu)
	}
	for i, v := range in.Samples {
		if cpu.Samples[i] != v {
			t.Fatalf("sample[%d]=%v, want %v", i, cpu.Samples[i], v)
		}
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a trace\n1\n2\n",
		"# dpd-trace v1 bogus\n1\n",
		"# dpd-trace v1 event\nnotanumber\n",
		"# dpd-trace v1 cpu\n# interval_ns: abc\n1\n",
	}
	for i, c := range cases {
		if _, _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTextSkipsBlanksAndComments(t *testing.T) {
	src := "# dpd-trace v1 event\n# name: x\n\n# a comment\n7\n\n8\n"
	ev, _, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Values) != 2 || ev.Values[0] != 7 || ev.Values[1] != 8 {
		t.Fatalf("values=%v", ev.Values)
	}
}

func TestBinaryRoundTripEvent(t *testing.T) {
	in := &EventTrace{Name: "swim", Values: []int64{1 << 40, -(1 << 40), 0, 42}}
	var buf bytes.Buffer
	if err := WriteEventBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	ev, cpu, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != nil || ev.Name != "swim" {
		t.Fatalf("decoded ev=%v cpu=%v", ev, cpu)
	}
	for i, v := range in.Values {
		if ev.Values[i] != v {
			t.Fatalf("value[%d]=%d, want %d", i, ev.Values[i], v)
		}
	}
}

func TestBinaryRoundTripCPU(t *testing.T) {
	in := &CPUTrace{Name: "ft", Interval: 250 * time.Microsecond, Samples: []float64{3.25, 0, 16}}
	var buf bytes.Buffer
	if err := WriteCPUBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	_, cpu, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Interval != 250*time.Microsecond || len(cpu.Samples) != 3 {
		t.Fatalf("decoded %+v", cpu)
	}
	for i, v := range in.Samples {
		if cpu.Samples[i] != v {
			t.Fatalf("sample[%d]=%v, want %v", i, cpu.Samples[i], v)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	in := &EventTrace{Name: "x", Values: []int64{1, 2, 3}}
	var buf bytes.Buffer
	if err := WriteEventBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte{}, good...)
	bad[4] = 9
	if _, _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated payload.
	if _, _, err := ReadBinary(bytes.NewReader(good[:len(good)-4])); err == nil {
		t.Error("truncation accepted")
	}
	// Empty.
	if _, _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
}

// Property: binary round trip is lossless for arbitrary event values.
func TestPropertyBinaryEventRoundTrip(t *testing.T) {
	f := func(name string, vals []int64) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		in := &EventTrace{Name: name, Values: vals}
		var buf bytes.Buffer
		if err := WriteEventBinary(&buf, in); err != nil {
			return false
		}
		ev, _, err := ReadBinary(&buf)
		if err != nil || ev.Name != name || len(ev.Values) != len(vals) {
			return false
		}
		for i := range vals {
			if ev.Values[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: text round trip is lossless for event traces (integers encode
// exactly in decimal).
func TestPropertyTextEventRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		in := &EventTrace{Name: "p", Values: vals}
		var buf bytes.Buffer
		if err := WriteEventText(&buf, in); err != nil {
			return false
		}
		ev, _, err := ReadText(&buf)
		if err != nil || len(ev.Values) != len(vals) {
			return false
		}
		for i := range vals {
			if ev.Values[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
