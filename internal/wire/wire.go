// Package wire is the repo's one binary-codec idiom: little-endian
// append helpers for encoding, a bounds-checked Dec cursor for decoding,
// and length-prefixed frames for streaming. The trace codec and the
// detector state-checkpoint codecs are both built on it, so every
// on-disk format in the tree shares the same primitives and the same
// safety contract.
//
// The contract, in both directions:
//
//   - Encoding appends to a caller-supplied buffer and never fails; with
//     sufficient capacity it performs no allocation, which is what lets
//     Checkpoint serialize into a reused buffer at 0 allocs/op.
//   - Decoding NEVER panics and NEVER over-reads: every Dec accessor
//     checks the remaining bytes first, and bulk reads must be preceded
//     by a Need check before any dependent allocation, so truncated or
//     hostile input costs at most the bytes it actually contains.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated is wrapped by every decode error caused by input ending
// before a declared field; callers can errors.Is on it to distinguish
// short input from structural corruption.
var ErrTruncated = errors.New("wire: truncated input")

// ErrFrameTooLarge is wrapped by ReadFrame when a frame's length prefix
// exceeds the caller's limit — a distinct condition from truncation
// (the bytes may all be on the wire; the claim itself is hostile), so
// protocol layers can report it with its own error code.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU16 appends v as 2 little-endian bytes.
func AppendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }

// AppendU64 appends v as 8 little-endian bytes.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends v as 8 little-endian bytes (two's complement).
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends v as its 8 IEEE-754 bits, little endian. Encoding
// the bits (not the value) is what makes float state round-trip to the
// exact same subsequent arithmetic.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendUvarint appends v in unsigned LEB128 (at most 10 bytes).
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v zigzag-encoded in LEB128.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendUint sugars AppendUvarint for non-negative ints (cursors,
// counts, window sizes). Negative values are a programming error and
// encode as a huge uvarint that decode-side validation rejects.
func AppendUint(b []byte, v int) []byte { return AppendUvarint(b, uint64(v)) }

// Dec is a bounds-checked decode cursor over one buffer. All accessors
// return the zero value once an error is recorded, so a decode sequence
// can run unconditionally and check Err once at the end — except before
// allocating based on a decoded count, where Need must gate the
// allocation.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder positioned at the start of buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Reset repositions d at the start of buf, clearing any error.
func (d *Dec) Reset(buf []byte) { d.buf, d.off, d.err = buf, 0, nil }

// Err returns the first decode error (nil if none so far).
func (d *Dec) Err() error { return d.err }

// Offset returns the number of bytes consumed so far.
func (d *Dec) Offset() int { return d.off }

// Remaining returns the number of unconsumed bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Need verifies that at least n more bytes are available (and that n is
// sane), recording a truncation error otherwise. Call it with the total
// computed size of a bulk section BEFORE allocating storage for it, so a
// tiny corrupted input cannot demand a huge allocation.
func (d *Dec) Need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || n > d.Remaining() {
		d.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, d.Remaining()))
		return false
	}
	return true
}

// U8 decodes one byte.
func (d *Dec) U8() uint8 {
	if !d.Need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 decodes 2 little-endian bytes.
func (d *Dec) U16() uint16 {
	if !d.Need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// U64 decodes 8 little-endian bytes.
func (d *Dec) U64() uint64 {
	if !d.Need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 decodes 8 little-endian bytes as a two's-complement int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 decodes 8 little-endian bytes as IEEE-754 float64 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Uvarint decodes an unsigned LEB128 value.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(fmt.Errorf("%w: uvarint", ErrTruncated))
		} else {
			d.fail(errors.New("wire: uvarint overflows 64 bits"))
		}
		return 0
	}
	d.off += n
	return v
}

// Varint decodes a zigzag LEB128 value.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(fmt.Errorf("%w: varint", ErrTruncated))
		} else {
			d.fail(errors.New("wire: varint overflows 64 bits"))
		}
		return 0
	}
	d.off += n
	return v
}

// Uint decodes a uvarint and range-checks it into [0, max], for counts
// and cursors whose legal range the caller knows. It records an error
// (and returns 0) when the decoded value is outside the range.
func (d *Dec) Uint(max int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if max < 0 || v > uint64(max) {
		d.fail(fmt.Errorf("wire: value %d outside [0,%d]", v, max))
		return 0
	}
	return int(v)
}

// Bytes returns the next n bytes without copying (aliasing the input
// buffer) or nil after recording an error when fewer remain.
func (d *Dec) Bytes(n int) []byte {
	if !d.Need(n) {
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

// U64s bulk-decodes n fixed-width uint64 values into dst[:n]. The
// caller must size dst itself — typically into preallocated state
// arrays — after gating with Need(8*n).
func (d *Dec) U64s(dst []uint64) {
	if !d.Need(8 * len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
	}
}

// I64s bulk-decodes fixed-width int64 values into dst.
func (d *Dec) I64s(dst []int64) {
	if !d.Need(8 * len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
}

// F64s bulk-decodes fixed-width float64 bit patterns into dst.
func (d *Dec) F64s(dst []float64) {
	if !d.Need(8 * len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
}

// AppendVarints appends each value zigzag-encoded in LEB128: the bulk
// form the ingest frame codec uses for event sample batches, where
// values are loop addresses or small tags and the variable encoding
// keeps a batch frame a fraction of its fixed-width size.
func AppendVarints(b []byte, vs []int64) []byte {
	for _, v := range vs {
		b = AppendVarint(b, v)
	}
	return b
}

// AppendU64s appends each value as 8 little-endian bytes.
func AppendU64s(b []byte, vs []uint64) []byte {
	for _, v := range vs {
		b = AppendU64(b, v)
	}
	return b
}

// AppendI64s appends each value as 8 little-endian bytes.
func AppendI64s(b []byte, vs []int64) []byte {
	for _, v := range vs {
		b = AppendI64(b, v)
	}
	return b
}

// AppendF64s appends each value's 8 IEEE-754 bits.
func AppendF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = AppendF64(b, v)
	}
	return b
}

// AppendFrame appends one length-prefixed frame to buf: a uvarint
// payload length followed by the payload. It is the buffer-side twin of
// WriteFrame, for staging many frames before one Write.
func AppendFrame(buf, payload []byte) []byte {
	buf = AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

// WriteFrame writes one length-prefixed frame: a uvarint payload length
// followed by the payload. A zero-length frame is a valid terminator
// (see ReadFrame).
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// FrameReader reads length-prefixed frames written by WriteFrame.
// Framing needs byte-granular reads, so the source must be buffered.
type FrameReader interface {
	io.Reader
	io.ByteReader
}

// ReadFrame reads one frame into buf (reused when its capacity
// suffices) and returns the payload. A zero-length frame returns
// (nil, nil): the stream terminator. Frames larger than max are
// rejected before any allocation, so a corrupted length prefix cannot
// demand unbounded memory.
func ReadFrame(r FrameReader, max int, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("wire: frame length: %w", err)
	}
	if n == 0 {
		return nil, nil
	}
	if max >= 0 && n > uint64(max) {
		return nil, fmt.Errorf("%w: frame of %d bytes, limit %d", ErrFrameTooLarge, n, max)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	return buf, nil
}
