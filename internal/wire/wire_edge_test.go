package wire

// Edge cases at the transfer-channel boundaries: frames exactly at the
// size limit, varint/uvarint values at the 64-bit extremes, and length
// prefixes whose encoding sits at the 10-byte LEB128 maximum — the
// shapes the cluster transfer plane (internal/cluster) puts on the wire
// when a handoff frame carries a maximum-size engine checkpoint.

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestUvarintExtremes(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1<<32 - 1, 1 << 32, math.MaxUint64} {
		enc := AppendUvarint(nil, v)
		if v == math.MaxUint64 && len(enc) != 10 {
			t.Fatalf("MaxUint64 encoded in %d bytes, want the 10-byte LEB128 maximum", len(enc))
		}
		d := NewDec(enc)
		if got := d.Uvarint(); got != v || d.Err() != nil {
			t.Fatalf("uvarint %d roundtripped to %d (err %v)", v, got, d.Err())
		}
		if d.Remaining() != 0 {
			t.Fatalf("uvarint %d left %d bytes", v, d.Remaining())
		}
	}
	// An 11-byte continuation run overflows 64 bits and must error, not
	// wrap or panic.
	over := bytes.Repeat([]byte{0x80}, 10)
	over = append(over, 0x01)
	d := NewDec(over)
	d.Uvarint()
	if d.Err() == nil {
		t.Fatal("11-byte uvarint accepted")
	}
}

func TestVarintExtremes(t *testing.T) {
	for _, v := range []int64{0, -1, 1, math.MinInt64, math.MaxInt64, math.MinInt64 + 1} {
		d := NewDec(AppendVarint(nil, v))
		if got := d.Varint(); got != v || d.Err() != nil {
			t.Fatalf("varint %d roundtripped to %d (err %v)", v, got, d.Err())
		}
	}
}

// TestReadFrameAtLimit pins the boundary: a frame whose payload is
// exactly max is accepted, one byte more is rejected with
// ErrFrameTooLarge — before any allocation — and the terminator passes
// under any limit.
func TestReadFrameAtLimit(t *testing.T) {
	const max = 64
	exact := bytes.Repeat([]byte{0xAB}, max)
	payload, err := ReadFrame(bytes.NewReader(AppendFrame(nil, exact)), max, nil)
	if err != nil || !bytes.Equal(payload, exact) {
		t.Fatalf("frame exactly at limit rejected: %v", err)
	}
	over := bytes.Repeat([]byte{0xAB}, max+1)
	if _, err := ReadFrame(bytes.NewReader(AppendFrame(nil, over)), max, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("frame one past limit: got %v, want ErrFrameTooLarge", err)
	}
	// A hostile length claim far past the limit must be rejected from
	// the prefix alone; there are no body bytes to read.
	claim := AppendUvarint(nil, 1<<60)
	if _, err := ReadFrame(bytes.NewReader(claim), max, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile length claim: got %v, want ErrFrameTooLarge", err)
	}
	// The zero-length terminator is valid even under a zero limit.
	payload, err = ReadFrame(bytes.NewReader(AppendFrame(nil, nil)), 0, nil)
	if err != nil || payload != nil {
		t.Fatalf("terminator under zero limit: payload %v err %v", payload, err)
	}
}

// TestDecUintBoundary pins the inclusive range check.
func TestDecUintBoundary(t *testing.T) {
	d := NewDec(AppendUint(nil, 42))
	if got := d.Uint(42); got != 42 || d.Err() != nil {
		t.Fatalf("Uint at max: %d err %v", got, d.Err())
	}
	d.Reset(AppendUint(nil, 43))
	if d.Uint(42); d.Err() == nil {
		t.Fatal("Uint one past max accepted")
	}
	// max -1 rejects every value — the guard DecodeTable leans on for
	// member indexes of an empty member list.
	d.Reset(AppendUint(nil, 0))
	if d.Uint(-1); d.Err() == nil {
		t.Fatal("Uint with negative max accepted a value")
	}
}

// TestUvarintEndsAtBufferEdge decodes a value whose last byte is the
// buffer's last byte: the cursor must land exactly at the end, with no
// over-read and no error.
func TestUvarintEndsAtBufferEdge(t *testing.T) {
	enc := AppendUvarint(nil, 300) // two bytes
	d := NewDec(enc)
	if got := d.Uvarint(); got != 300 || d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("edge uvarint: %d err %v remaining %d", got, d.Err(), d.Remaining())
	}
	// Cut the continuation byte: mid-uvarint truncation must error.
	d.Reset(enc[:1])
	d.Uvarint()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("mid-uvarint truncation: %v", d.Err())
	}
}
