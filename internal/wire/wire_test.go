package wire

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestScalarRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 7)
	b = AppendU16(b, 65535)
	b = AppendU64(b, 1<<63+5)
	b = AppendI64(b, -42)
	b = AppendF64(b, math.Pi)
	b = AppendUvarint(b, 300)
	b = AppendVarint(b, -300)
	b = AppendUint(b, 1024)

	d := NewDec(b)
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U16(); v != 65535 {
		t.Errorf("U16 = %d", v)
	}
	if v := d.U64(); v != 1<<63+5 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("F64 = %g", v)
	}
	if v := d.Uvarint(); v != 300 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Varint(); v != -300 {
		t.Errorf("Varint = %d", v)
	}
	if v := d.Uint(2048); v != 1024 {
		t.Errorf("Uint = %d", v)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

func TestBulkRoundTrip(t *testing.T) {
	us := []uint64{0, 1, math.MaxUint64}
	is := []int64{-1, 0, math.MaxInt64}
	fs := []float64{0, -0.5, math.Inf(1), math.SmallestNonzeroFloat64}
	var b []byte
	b = AppendU64s(b, us)
	b = AppendI64s(b, is)
	b = AppendF64s(b, fs)

	d := NewDec(b)
	gu := make([]uint64, len(us))
	gi := make([]int64, len(is))
	gf := make([]float64, len(fs))
	d.U64s(gu)
	d.I64s(gi)
	d.F64s(gf)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range us {
		if gu[i] != us[i] {
			t.Errorf("u64[%d] = %d, want %d", i, gu[i], us[i])
		}
	}
	for i := range is {
		if gi[i] != is[i] {
			t.Errorf("i64[%d] = %d, want %d", i, gi[i], is[i])
		}
	}
	for i := range fs {
		if math.Float64bits(gf[i]) != math.Float64bits(fs[i]) {
			t.Errorf("f64[%d] = %g, want %g (bit-exact)", i, gf[i], fs[i])
		}
	}
}

// TestTruncationNeverPanics: every accessor on short input records an
// error and returns zero rather than panicking or over-reading; the
// error survives subsequent calls.
func TestTruncationNeverPanics(t *testing.T) {
	full := AppendF64(AppendU64(AppendUvarint(nil, 1e6), 9), 1.5)
	for cut := 0; cut < len(full); cut++ {
		d := NewDec(full[:cut])
		_ = d.Uvarint()
		_ = d.U64()
		_ = d.F64()
		_ = d.Bytes(4)
		if d.Err() == nil {
			t.Fatalf("cut=%d: truncated decode reported no error", cut)
		}
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut=%d: error %v does not wrap ErrTruncated", cut, d.Err())
		}
	}
}

func TestUintRangeCheck(t *testing.T) {
	b := AppendUint(nil, 100)
	d := NewDec(b)
	if d.Uint(99); d.Err() == nil {
		t.Fatal("out-of-range Uint reported no error")
	}
}

func TestNeedRejectsHugeDeclaredSizes(t *testing.T) {
	d := NewDec([]byte{1, 2, 3})
	if d.Need(1 << 40) {
		t.Fatal("Need accepted a size beyond the input")
	}
	if d.Need(-1) {
		t.Fatal("Need accepted a negative size")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), []byte("b"), []byte("gamma")}
	for _, p := range payloads {
		if err := WriteFrame(&sink, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteFrame(&sink, nil); err != nil { // terminator
		t.Fatal(err)
	}
	r := bufio.NewReader(&sink)
	var buf []byte
	for i, want := range payloads {
		got, err := ReadFrame(r, 1<<20, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
		buf = got
	}
	got, err := ReadFrame(r, 1<<20, buf)
	if err != nil || got != nil {
		t.Fatalf("terminator: got %q, err %v; want nil, nil", got, err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var sink bytes.Buffer
	if err := WriteFrame(&sink, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bufio.NewReader(&sink), 10, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestAppendVarintsRoundTrip(t *testing.T) {
	vs := []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63}
	buf := AppendVarints(nil, vs)
	d := NewDec(buf)
	for i, want := range vs {
		if got := d.Varint(); got != want {
			t.Fatalf("value %d = %d, want %d", i, got, want)
		}
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("after decode: err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var sink bytes.Buffer
	if err := WriteFrame(&sink, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	short := sink.Bytes()[:20]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(short)), 1<<20, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated frame body: err = %v, want ErrTruncated", err)
	}
}
