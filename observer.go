// Subscription/event API: instead of polling every per-sample Result
// for the rare interesting transitions, callers subscribe an Observer
// at construction time (WithObserver) and are called back exactly when
// the detector locks, re-locks, starts a period, or loses its lock —
// the push-style form of the paper's Figure 6 wiring, where the
// SelfAnalyzer reacts to the DPD's detection point.
package dpd

import "dpd/internal/core"

// Re-exported observer types; see the core package for full
// documentation of the dispatch and scratch-reuse contract.
type (
	// Observer receives detector state transitions synchronously on the
	// Feed path; implementations must be cheap and allocation-free.
	Observer = core.Observer
	// Event describes one state transition. The pointer passed to
	// callbacks aliases an engine-owned scratch: copy it to retain it.
	Event = core.Event
	// EventKind identifies the transition type of an Event.
	EventKind = core.EventKind
	// ObserverFuncs adapts free functions to Observer; nil fields are
	// no-ops.
	ObserverFuncs = core.ObserverFuncs
)

// Observer event kinds, re-exported.
const (
	// EventLock: an unlocked detector established a periodicity.
	EventLock = core.EventLock
	// EventPeriodChange: a locked detector re-locked onto a different
	// period.
	EventPeriodChange = core.EventPeriodChange
	// EventSegmentStart: the current sample begins a new period.
	EventSegmentStart = core.EventSegmentStart
	// EventUnlock: the lock was lost.
	EventUnlock = core.EventUnlock
)
