package dpd

import (
	"errors"
	"fmt"

	"dpd/internal/core"
)

// Option configures New. Options are applied in order; every invalid
// option is recorded, and New reports all of them in one joined error
// so a misconfigured call site is fixed in a single round trip.
type Option func(*builder)

// builder accumulates the configuration selected by the options.
type builder struct {
	cfg core.Config

	engine    string // "", "event", "magnitude", "multiscale", "adaptive"
	windowSet bool
	maxLagSet bool
	graceSet  bool
	ladder    []int
	policy    AdaptivePolicy
	obs       Observer

	errs []error
}

// selectEngine records the engine choice, rejecting conflicting options
// (e.g. WithMagnitude combined with WithLadder).
func (b *builder) selectEngine(name string) {
	if b.engine != "" && b.engine != name {
		b.errs = append(b.errs, fmt.Errorf("engine options conflict: %s already selected, cannot also select %s", b.engine, name))
		return
	}
	b.engine = name
}

// WithWindow sets the window size N (paper §3.1: up to 1024 to capture
// periods of up to 1023 samples; below 10 for very short periods). It
// conflicts with WithLadder (each level has its own window) and
// WithAdaptive (the policy's MaxWindow is the initial window).
func WithWindow(n int) Option {
	return func(b *builder) {
		if n < 2 || n > core.MaxWindow {
			b.errs = append(b.errs, fmt.Errorf("window %d outside [2,%d]", n, core.MaxWindow))
			return
		}
		b.cfg.Window = n
		b.windowSet = true
	}
}

// WithMaxLag sets M, the largest probed lag (default: window−1). Must
// satisfy 1 ≤ M ≤ N (paper: M ≤ N). It conflicts with WithLadder and
// WithAdaptive, whose engines derive the lag range from their own
// windows.
func WithMaxLag(m int) Option {
	return func(b *builder) {
		if m < 1 {
			b.errs = append(b.errs, fmt.Errorf("max lag %d must be >= 1", m))
			return
		}
		b.cfg.MaxLag = m
		b.maxLagSet = true
	}
}

// WithConfirm sets how many consecutive steps a candidate period must
// hold before the detector locks (default 1: lock immediately).
func WithConfirm(n int) Option {
	return func(b *builder) {
		if n < 1 {
			b.errs = append(b.errs, fmt.Errorf("confirm %d must be >= 1", n))
			return
		}
		b.cfg.Confirm = n
	}
}

// WithGrace sets how many consecutive violating steps a locked period
// tolerates before the lock drops (default 0: drop on first violation).
func WithGrace(n int) Option {
	return func(b *builder) {
		if n < 0 {
			b.errs = append(b.errs, fmt.Errorf("grace %d must be >= 0", n))
			return
		}
		b.cfg.Grace = n
		b.graceSet = true
	}
}

// WithMagnitude selects the magnitude engine (paper eq. 1, for streams
// whose values are meaningful magnitudes: CPU counts, hardware
// counters). relThreshold is the fraction of the curve mean a local
// minimum must stay below to count as a periodicity; 0 selects the
// default (0.5). Magnitude streams are fed through Sample.Magnitude.
func WithMagnitude(relThreshold float64) Option {
	return func(b *builder) {
		b.selectEngine("magnitude")
		if relThreshold < 0 || relThreshold > 1 {
			b.errs = append(b.errs, fmt.Errorf("magnitude threshold %g outside [0,1]", relThreshold))
			return
		}
		b.cfg.RelThreshold = relThreshold
	}
}

// WithLadder selects the multi-scale engine: a ladder of event
// detectors with the given strictly increasing windows, for nested
// periodicities (paper §4, Table 2). No windows selects DefaultLadder.
func WithLadder(windows ...int) Option {
	return func(b *builder) {
		b.selectEngine("multiscale")
		if len(windows) == 0 {
			windows = DefaultLadder
		}
		prev := 1
		for _, w := range windows {
			if w <= prev {
				b.errs = append(b.errs, fmt.Errorf("ladder windows must be strictly increasing and >= 2, got %v", windows))
				break
			}
			prev = w
		}
		b.ladder = windows
	}
}

// WithAdaptive selects the adaptive engine: an event detector whose
// window shrinks once a satisfying periodicity is detected and grows
// back when the lock is lost (paper §3.1/§4). The zero policy selects
// DefaultAdaptivePolicy.
func WithAdaptive(policy AdaptivePolicy) Option {
	return func(b *builder) {
		b.selectEngine("adaptive")
		if policy == (AdaptivePolicy{}) {
			policy = DefaultAdaptivePolicy()
		}
		if err := policy.Validate(); err != nil {
			b.errs = append(b.errs, err)
			return
		}
		b.policy = policy
	}
}

// WithObserver subscribes obs to the detector's state transitions
// (OnLock, OnPeriodChange, OnSegmentStart, OnUnlock), so callers stop
// polling per-sample Results. Dispatch reuses an Event scratch and is
// allocation-free; callbacks run synchronously on the Feed path.
func WithObserver(obs Observer) Option {
	return func(b *builder) {
		if obs == nil {
			b.errs = append(b.errs, errors.New("nil Observer"))
			return
		}
		b.obs = obs
	}
}

// observable is satisfied by every engine adapter.
type observable interface {
	SetObserver(core.Observer)
}

// New constructs a detector from functional options: the single entry
// point for every engine. With no options it is the paper's default —
// an event detector with a 1024-sample window, large enough to capture
// periodicities of up to 1023 samples (§3.1).
//
//	det, err := dpd.New()                                  // Table-1 default
//	det, err := dpd.New(dpd.WithWindow(100))               // event, N=100
//	det, err := dpd.New(dpd.WithMagnitude(0.5))            // eq. (1) engine
//	det, err := dpd.New(dpd.WithLadder(8, 32, 256, 1024))  // nested periods
//	det, err := dpd.New(dpd.WithAdaptive(dpd.DefaultAdaptivePolicy()))
//
// The dynamic type of the returned Detector is *EventEngine,
// *MagnitudeEngine, *MultiScaleEngine or *AdaptiveEngine; type-assert
// to reach engine-specific accessors (curves, ladders, resize stats).
// All invalid options are reported together in one joined error.
func New(opts ...Option) (Detector, error) {
	b := builder{}
	for _, opt := range opts {
		opt(&b)
	}
	if b.engine == "" {
		b.engine = "event"
		if !b.windowSet {
			b.cfg.Window = DefaultDPDWindow
		}
	}

	var (
		det observable
		err error
	)
	if len(b.errs) > 0 {
		// Option-level errors already describe the problem; building the
		// engine from the partially applied state would only add
		// derivative noise to the joined error.
		return nil, fmt.Errorf("dpd.New: %w", errors.Join(b.errs...))
	}
	switch b.engine {
	case "event":
		var d *EventDetector
		if d, err = core.NewEventDetector(b.cfg); err == nil {
			det = core.NewEventEngine(d)
		}
	case "magnitude":
		var d *MagnitudeDetector
		if d, err = core.NewMagnitudeDetector(b.cfg); err == nil {
			det = core.NewMagnitudeEngine(d)
		}
	case "multiscale":
		if b.windowSet {
			err = errors.New("WithWindow conflicts with WithLadder: ladder windows set each level's size")
		} else if b.maxLagSet {
			err = errors.New("WithMaxLag conflicts with WithLadder: each level probes lags up to its own window")
		} else {
			var d *MultiScaleDetector
			if d, err = core.NewMultiScaleDetector(b.ladder, b.cfg); err == nil {
				det = core.NewMultiScaleEngine(d)
			}
		}
	case "adaptive":
		if b.windowSet {
			err = errors.New("WithWindow conflicts with WithAdaptive: the policy's MaxWindow sets the initial window")
		} else if b.maxLagSet {
			err = errors.New("WithMaxLag conflicts with WithAdaptive: resizes recompute the lag range")
		} else {
			var d *AdaptiveDetector
			if d, err = core.NewAdaptiveDetector(b.policy, b.cfg); err == nil {
				det = core.NewAdaptiveEngine(d)
			}
		}
	}
	if err != nil {
		b.errs = append(b.errs, err)
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("dpd.New: %w", errors.Join(b.errs...))
	}
	det.SetObserver(b.obs)
	return det.(Detector), nil
}

// Must is New that panics on invalid options; for static
// configurations in examples, tools and tests.
func Must(opts ...Option) Detector {
	det, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return det
}

// DefaultDPDWindow is the window New selects when no engine or window
// option is given: the paper's Table-1 default of 1024 samples.
const DefaultDPDWindow = 1024

// EventSample wraps an event-stream value (loop address, message tag)
// as a Sample for the event, multi-scale and adaptive engines.
func EventSample(v int64) Sample { return Sample{Value: v} }

// MagnitudeSample wraps a magnitude-stream value (CPU count, hardware
// counter) as a Sample for the magnitude engine.
func MagnitudeSample(v float64) Sample { return Sample{Magnitude: v} }
