// Option-validation tests: dpd.New must reject every invalid option
// with a descriptive error, report multiple invalid options together in
// one joined error (the satellite fixing the old NewDPD-panics /
// NewDPDWithWindow-errors inconsistency), and dpd.Must must panic on
// exactly the inputs New rejects.
package dpd_test

import (
	"strings"
	"testing"

	"dpd"
)

func TestNewOptionValidationTable(t *testing.T) {
	for _, tc := range []struct {
		name    string
		opts    []dpd.Option
		wantErr []string // substrings that must all appear in the error
	}{
		{
			name:    "window too small",
			opts:    []dpd.Option{dpd.WithWindow(1)},
			wantErr: []string{"window 1"},
		},
		{
			name:    "window too large",
			opts:    []dpd.Option{dpd.WithWindow(1 << 20)},
			wantErr: []string{"window 1048576"},
		},
		{
			name:    "negative max lag",
			opts:    []dpd.Option{dpd.WithMaxLag(-1)},
			wantErr: []string{"max lag -1"},
		},
		{
			name:    "max lag above window",
			opts:    []dpd.Option{dpd.WithWindow(16), dpd.WithMaxLag(17)},
			wantErr: []string{"max lag 17"},
		},
		{
			name:    "confirm zero",
			opts:    []dpd.Option{dpd.WithConfirm(0)},
			wantErr: []string{"confirm 0"},
		},
		{
			name:    "negative grace",
			opts:    []dpd.Option{dpd.WithGrace(-2)},
			wantErr: []string{"grace -2"},
		},
		{
			name:    "magnitude threshold out of range",
			opts:    []dpd.Option{dpd.WithMagnitude(1.5)},
			wantErr: []string{"threshold 1.5"},
		},
		{
			name:    "ladder not increasing",
			opts:    []dpd.Option{dpd.WithLadder(32, 8)},
			wantErr: []string{"strictly increasing"},
		},
		{
			name:    "ladder window below 2",
			opts:    []dpd.Option{dpd.WithLadder(1, 8)},
			wantErr: []string{"strictly increasing"},
		},
		{
			name:    "invalid adaptive policy",
			opts:    []dpd.Option{dpd.WithAdaptive(dpd.AdaptivePolicy{MinWindow: 64, MaxWindow: 8, ShrinkAfter: 1, Headroom: 2, GrowAfter: 1})},
			wantErr: []string{"bounds"},
		},
		{
			name:    "nil observer",
			opts:    []dpd.Option{dpd.WithObserver(nil)},
			wantErr: []string{"nil Observer"},
		},
		{
			name:    "engine conflict magnitude+ladder",
			opts:    []dpd.Option{dpd.WithMagnitude(0.5), dpd.WithLadder(8, 32)},
			wantErr: []string{"conflict", "magnitude", "multiscale"},
		},
		{
			name:    "engine conflict ladder+adaptive",
			opts:    []dpd.Option{dpd.WithLadder(8, 32), dpd.WithAdaptive(dpd.DefaultAdaptivePolicy())},
			wantErr: []string{"conflict", "multiscale", "adaptive"},
		},
		{
			name:    "window conflicts with ladder",
			opts:    []dpd.Option{dpd.WithLadder(8, 32), dpd.WithWindow(64)},
			wantErr: []string{"WithWindow", "WithLadder"},
		},
		{
			name:    "window conflicts with adaptive",
			opts:    []dpd.Option{dpd.WithAdaptive(dpd.DefaultAdaptivePolicy()), dpd.WithWindow(64)},
			wantErr: []string{"WithWindow", "WithAdaptive"},
		},
		{
			name:    "max lag conflicts with ladder",
			opts:    []dpd.Option{dpd.WithLadder(8, 64), dpd.WithMaxLag(4)},
			wantErr: []string{"WithMaxLag", "WithLadder"},
		},
		{
			name:    "max lag conflicts with adaptive",
			opts:    []dpd.Option{dpd.WithAdaptive(dpd.DefaultAdaptivePolicy()), dpd.WithMaxLag(4)},
			wantErr: []string{"WithMaxLag", "WithAdaptive"},
		},
		{
			name: "multiple errors reported together",
			opts: []dpd.Option{dpd.WithWindow(1), dpd.WithConfirm(0), dpd.WithGrace(-1)},
			wantErr: []string{
				"window 1", "confirm 0", "grace -1",
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			det, err := dpd.New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) accepted, got %T", tc.name, det)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
			// Must panics on exactly the inputs New rejects.
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Must did not panic")
					}
				}()
				dpd.Must(tc.opts...)
			}()
		})
	}
}

func TestNewValidConfigurations(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []dpd.Option
		typ  string
	}{
		{"defaults", nil, "event"},
		{"event window", []dpd.Option{dpd.WithWindow(100)}, "event"},
		{"event full", []dpd.Option{dpd.WithWindow(64), dpd.WithMaxLag(32), dpd.WithConfirm(2), dpd.WithGrace(4)}, "event"},
		{"magnitude default threshold", []dpd.Option{dpd.WithMagnitude(0)}, "magnitude"},
		{"ladder default windows", []dpd.Option{dpd.WithLadder()}, "multiscale"},
		{"ladder explicit", []dpd.Option{dpd.WithLadder(8, 32, 256)}, "multiscale"},
		{"adaptive zero policy", []dpd.Option{dpd.WithAdaptive(dpd.AdaptivePolicy{})}, "adaptive"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			det, err := dpd.New(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			var typ string
			switch det.(type) {
			case *dpd.EventEngine:
				typ = "event"
			case *dpd.MagnitudeEngine:
				typ = "magnitude"
			case *dpd.MultiScaleEngine:
				typ = "multiscale"
			case *dpd.AdaptiveEngine:
				typ = "adaptive"
			}
			if typ != tc.typ {
				t.Errorf("engine type %s, want %s", typ, tc.typ)
			}
		})
	}
}

// TestErrorContractConsistency is the satellite check: the old surface
// mixed a panicking NewDPD with an erroring NewDPDWithWindow; the new
// entry point always returns errors from New and always panics from
// Must, and the legacy shims inherit the error contract.
func TestErrorContractConsistency(t *testing.T) {
	if _, err := dpd.New(dpd.WithWindow(0)); err == nil {
		t.Error("New(WithWindow(0)) accepted")
	}
	if _, err := dpd.NewDPDWithWindow(0); err == nil {
		t.Error("NewDPDWithWindow(0) accepted")
	}
	// The default constructions cannot fail and must not panic.
	dpd.NewDPD()
	dpd.Must()
}
