// Command apicheck is the CI API-surface gate: it fails (exit 1, one
// line per violation) when a required exported symbol of the public dpd
// package disappears — in particular the deprecated constructor shims
// (NewDPD, NewEventDetector, …) that the unified-interface redesign
// promised to keep, and the unified surface itself (New, Must, the
// With* options, Detector, Observer). An accidental rename or deletion
// of any of these is an API break for downstream users and must be a
// deliberate, reviewed change: update the required list here in the
// same commit.
//
// Checked: every exported top-level symbol of the non-test .go files in
// the package root directory (the only importable package).
//
// Usage (from the repo root):
//
//	go run ./scripts/apicheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// required lists the exported symbols (types, funcs, consts, vars) the
// public package must keep. Methods are covered transitively: removing
// a type removes its method set, and interface methods are part of the
// type's definition.
var required = []string{
	// Unified surface (the tentpole).
	"Detector", "Sample", "Stat", "New", "Must",
	"Option", "WithWindow", "WithMaxLag", "WithConfirm", "WithGrace",
	"WithMagnitude", "WithLadder", "WithAdaptive", "WithObserver",
	"EventSample", "MagnitudeSample", "DefaultDPDWindow",
	"EventEngine", "MagnitudeEngine", "MultiScaleEngine", "AdaptiveEngine",

	// Subscription/event API.
	"Observer", "Event", "EventKind", "ObserverFuncs",
	"EventLock", "EventPeriodChange", "EventSegmentStart", "EventUnlock",

	// State portability (checkpoint/restore codec).
	"Checkpoint", "AppendCheckpoint", "Restore", "RestorePool",

	// Table-1 paper port and deprecated constructor shims.
	"DPD", "NewDPD", "NewDPDWithWindow",
	"NewEventDetector", "NewMagnitudeDetector", "NewMultiScaleDetector",
	"NewAdaptiveDetector", "NewEventPredictor", "NewMagnitudePredictor",
	"NewPeriodTracker", "NewSegmenter", "DefaultAdaptivePolicy",

	// Toolkit aliases.
	"Config", "Result", "Curve", "EventDetector", "MagnitudeDetector",
	"MultiScaleDetector", "MultiResult", "AdaptiveDetector", "AdaptivePolicy",
	"PeriodTracker", "PeriodStat", "EventPredictor", "MagnitudePredictor",
	"Segmenter", "Segment", "DefaultLadder",

	// Multi-stream pool.
	"Pool", "NewPool", "PoolConfig", "KeyedSample", "StreamStat",
	"AdaptiveConfig", "AdaptiveStats", "HotStreamInfo",

	// Observability: the typed cluster section of /metrics.
	"ClusterNodeMetrics",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	exported, err := exportedSymbols(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(2)
	}

	var missing []string
	for _, name := range required {
		if !exported[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "package dpd: required exported symbol %s has disappeared\n", name)
		}
		fmt.Fprintf(os.Stderr, "apicheck: %d required symbols missing (deprecated shims and the unified surface must stay; if this is deliberate, update scripts/apicheck)\n", len(missing))
		os.Exit(1)
	}
}

// exportedSymbols collects the exported top-level names of the package
// in dir (non-test files only).
func exportedSymbols(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					out[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							out[s.Name.Name] = true
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								out[n.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}
