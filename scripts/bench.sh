#!/usr/bin/env bash
# Records the perf trajectory of the paper-table benchmarks (Figure 4,
# Table 2, Table 3), the multi-stream pool benchmarks, the serving
# layer's ingest frame decode and the resilient client's send path as a
# JSON snapshot: ns/elem, allocs/op, elems/s and the other reported
# metrics. BenchmarkClientSend's allocs/op proves the client's
# steady-state send (stage, window copy, ping cadence, ack drain) stays
# at zero allocations.
#
# Usage:  scripts/bench.sh [out.json]
#         BENCHTIME=10x scripts/bench.sh    # more iterations, stabler numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr6.json}"
benchtime="${BENCHTIME:-1x}"

raw=$(go test -run '^$' -bench 'Fig4|Table2|Table3|PoolFeed|IngestFrameDecode|ClientSend' -benchtime "$benchtime" -benchmem . ./internal/client)
echo "$raw" >&2

echo "$raw" | awk -v date="$(date -u +%FT%TZ)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	rec = sprintf("    {\"bench\": \"%s\", \"iters\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2)
		rec = rec sprintf(", \"%s\": %s", $(i+1), $i)
	rec = rec "}"
	recs[n++] = rec
}
END {
	printf "{\n  \"date\": \"%s\",\n  \"results\": [\n", date
	for (i = 0; i < n; i++)
		printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' > "$out"

echo "wrote $out" >&2
