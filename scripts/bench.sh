#!/usr/bin/env bash
# Records the perf trajectory of the paper-table benchmarks (Figure 4,
# Table 2, Table 3), the multi-stream pool benchmarks, the serving
# layer's ingest frame decode and the resilient client's send path as a
# JSON snapshot: ns/elem, allocs/op, elems/s and the other reported
# metrics. BenchmarkClientSend's allocs/op proves the client's
# steady-state send (stage, window copy, ping cadence, ack drain) stays
# at zero allocations.
#
# The snapshot also embeds the multicore scaling matrix
# (scripts/scalingmatrix): GOMAXPROCS × shards × {uniform, zipf:0.99,
# zipf:1.2} × {steady, burst} × adaptive {off, on}, each cell with
# Melem/s and p50/p99/p999 batch-accept latency — the adversarial
# referee's headline numbers — and the cluster-tier costs
# (scripts/clusterbench): routing overhead of the 3-node fan-out vs a
# direct single-node dial (ns/elem, Melem/s) and the migration pause
# p99 a client sees while a stream moves live.
#
# PoolFeedAdaptive is the contention-adaptive placement referee: the
# skewed cells show the celebrity served off its dedicated hot worker,
# and the uniform on/off pair is the sampler-overhead guard — the
# derived adaptive_uniform_overhead_pct field should stay ≤2 (recorded,
# not asserted: single-run numbers on a loaded box are noisy; compare
# across snapshots).
#
# PoolFeedObs is the observability-core referee (PR 10): the obs on/off
# pair measures the feed path with the flight recorder and the sampled
# FeedBatch histogram wired, and the derived obs_overhead_pct field
# should stay ≤2 under the same min-of-3 protocol. The snapshot also
# embeds obs_latency — the live server's p50/p99/p999 per instrumented
# site (ingest, feed_batch, checkpoint_write, migration_pause) from a
# seeded end-to-end run (scripts/obsquantiles).
#
# Usage:  scripts/bench.sh [out.json]
#         BENCHTIME=10x scripts/bench.sh      # more iterations, stabler numbers
#         MATRIX=-quick scripts/bench.sh      # tiny matrix cells (CI smoke)
#         MATRIX=skip scripts/bench.sh        # micro benchmarks only
#         CLUSTER=-quick scripts/bench.sh     # tiny cluster runs
#         CLUSTER=skip scripts/bench.sh       # skip the cluster section
#         OBSQ=-quick scripts/bench.sh        # tiny obs-quantile run
#         OBSQ=skip scripts/bench.sh          # skip the obs-quantile section
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr10.json}"
benchtime="${BENCHTIME:-1x}"
matrix_mode="${MATRIX:-}"
cluster_mode="${CLUSTER:-}"
obsq_mode="${OBSQ:-}"

raw=$(go test -run '^$' -bench 'Fig4|Table2|Table3|PoolFeed|PoolFeedAdaptive|IngestFrameDecode|ClientSend' -benchtime "$benchtime" -benchmem . ./internal/client)
echo "$raw" >&2

results=$(echo "$raw" | awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	rec = sprintf("    {\"bench\": \"%s\", \"iters\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2)
		rec = rec sprintf(", \"%s\": %s", $(i+1), $i)
	rec = rec "}"
	recs[n++] = rec
}
END {
	for (i = 0; i < n; i++)
		printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
}')

if [ "$matrix_mode" = "skip" ]; then
	matrix="[]"
else
	matrix=$(go run ./scripts/scalingmatrix $matrix_mode)
fi

if [ "$cluster_mode" = "skip" ]; then
	clusterjson="null"
else
	clusterjson=$(go run ./scripts/clusterbench $cluster_mode)
fi

# Sampler-overhead guard: ns/elem delta of the uniform adaptive on/off
# pair (negative = on was faster). This needs its own well-sized run —
# at BENCHTIME=1x/50x the measurement window is a few ms and one GC
# pause or scheduler preemption swamps a 2% signal — so it always runs
# 2000 iterations × 3 and compares the per-config minima (the minimum
# filters out external hiccups; the real overhead is a constant cost
# present in every run).
guardraw=$(go test -run '^$' -bench 'PoolFeedAdaptive/uniform' -benchtime 2000x -count 3 .)
echo "$guardraw" >&2
overhead=$(echo "$guardraw" | awk '
/^BenchmarkPoolFeedAdaptive\/uniform\/adaptive=off/ { for (i=3;i+1<=NF;i+=2) if ($(i+1)=="ns/elem" && (off==0 || $i<off)) off=$i }
/^BenchmarkPoolFeedAdaptive\/uniform\/adaptive=on/  { for (i=3;i+1<=NF;i+=2) if ($(i+1)=="ns/elem" && (on==0 || $i<on)) on=$i }
END { if (off > 0 && on > 0) printf "%.2f", (on-off)/off*100; else printf "null" }')

# Observability-core overhead guard (PR 10): same min-of-3 protocol for
# the obs on/off pair — flight recorder plus sampled FeedBatch histogram
# versus the bare pool.
obsguardraw=$(go test -run '^$' -bench 'PoolFeedObs' -benchtime 2000x -count 3 .)
echo "$obsguardraw" >&2
obsoverhead=$(echo "$obsguardraw" | awk '
/^BenchmarkPoolFeedObs\/obs=off/ { for (i=3;i+1<=NF;i+=2) if ($(i+1)=="ns/elem" && (off==0 || $i<off)) off=$i }
/^BenchmarkPoolFeedObs\/obs=on/  { for (i=3;i+1<=NF;i+=2) if ($(i+1)=="ns/elem" && (on==0 || $i<on)) on=$i }
END { if (off > 0 && on > 0) printf "%.2f", (on-off)/off*100; else printf "null" }')

if [ "$obsq_mode" = "skip" ]; then
	obslatency="null"
else
	obslatency=$(go run ./scripts/obsquantiles $obsq_mode)
fi

{
	printf '{\n  "date": "%s",\n  "adaptive_uniform_overhead_pct": %s,\n  "obs_overhead_pct": %s,\n  "results": [\n' "$(date -u +%FT%TZ)" "$overhead" "$obsoverhead"
	printf '%s\n' "$results"
	printf '  ],\n  "scaling_matrix": %s,\n  "cluster": %s,\n  "obs_latency": %s\n}\n' "$matrix" "$clusterjson" "$obslatency"
} > "$out"

echo "wrote $out" >&2
