#!/usr/bin/env bash
# Records the perf trajectory of the paper-table benchmarks (Figure 4,
# Table 2, Table 3), the multi-stream pool benchmarks, the serving
# layer's ingest frame decode and the resilient client's send path as a
# JSON snapshot: ns/elem, allocs/op, elems/s and the other reported
# metrics. BenchmarkClientSend's allocs/op proves the client's
# steady-state send (stage, window copy, ping cadence, ack drain) stays
# at zero allocations.
#
# The snapshot also embeds the multicore scaling matrix
# (scripts/scalingmatrix): GOMAXPROCS × shards × {uniform, zipf:0.99,
# zipf:1.2} × {steady, burst} × adaptive {off, on}, each cell with
# Melem/s and p50/p99/p999 batch-accept latency — the adversarial
# referee's headline numbers — and the cluster-tier costs
# (scripts/clusterbench): routing overhead of the 3-node fan-out vs a
# direct single-node dial (ns/elem, Melem/s) and the migration pause
# p99 a client sees while a stream moves live.
#
# PoolFeedAdaptive is the contention-adaptive placement referee: the
# skewed cells show the celebrity served off its dedicated hot worker,
# and the uniform on/off pair is the sampler-overhead guard — the
# derived adaptive_uniform_overhead_pct field should stay ≤2 (recorded,
# not asserted: single-run numbers on a loaded box are noisy; compare
# across snapshots).
#
# Usage:  scripts/bench.sh [out.json]
#         BENCHTIME=10x scripts/bench.sh      # more iterations, stabler numbers
#         MATRIX=-quick scripts/bench.sh      # tiny matrix cells (CI smoke)
#         MATRIX=skip scripts/bench.sh        # micro benchmarks only
#         CLUSTER=-quick scripts/bench.sh     # tiny cluster runs
#         CLUSTER=skip scripts/bench.sh       # skip the cluster section
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr9.json}"
benchtime="${BENCHTIME:-1x}"
matrix_mode="${MATRIX:-}"
cluster_mode="${CLUSTER:-}"

raw=$(go test -run '^$' -bench 'Fig4|Table2|Table3|PoolFeed|PoolFeedAdaptive|IngestFrameDecode|ClientSend' -benchtime "$benchtime" -benchmem . ./internal/client)
echo "$raw" >&2

results=$(echo "$raw" | awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	rec = sprintf("    {\"bench\": \"%s\", \"iters\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2)
		rec = rec sprintf(", \"%s\": %s", $(i+1), $i)
	rec = rec "}"
	recs[n++] = rec
}
END {
	for (i = 0; i < n; i++)
		printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
}')

if [ "$matrix_mode" = "skip" ]; then
	matrix="[]"
else
	matrix=$(go run ./scripts/scalingmatrix $matrix_mode)
fi

if [ "$cluster_mode" = "skip" ]; then
	clusterjson="null"
else
	clusterjson=$(go run ./scripts/clusterbench $cluster_mode)
fi

# Sampler-overhead guard: ns/elem delta of the uniform adaptive on/off
# pair (negative = on was faster). This needs its own well-sized run —
# at BENCHTIME=1x/50x the measurement window is a few ms and one GC
# pause or scheduler preemption swamps a 2% signal — so it always runs
# 2000 iterations × 3 and compares the per-config minima (the minimum
# filters out external hiccups; the real overhead is a constant cost
# present in every run).
guardraw=$(go test -run '^$' -bench 'PoolFeedAdaptive/uniform' -benchtime 2000x -count 3 .)
echo "$guardraw" >&2
overhead=$(echo "$guardraw" | awk '
/^BenchmarkPoolFeedAdaptive\/uniform\/adaptive=off/ { for (i=3;i+1<=NF;i+=2) if ($(i+1)=="ns/elem" && (off==0 || $i<off)) off=$i }
/^BenchmarkPoolFeedAdaptive\/uniform\/adaptive=on/  { for (i=3;i+1<=NF;i+=2) if ($(i+1)=="ns/elem" && (on==0 || $i<on)) on=$i }
END { if (off > 0 && on > 0) printf "%.2f", (on-off)/off*100; else printf "null" }')

{
	printf '{\n  "date": "%s",\n  "adaptive_uniform_overhead_pct": %s,\n  "results": [\n' "$(date -u +%FT%TZ)" "$overhead"
	printf '%s\n' "$results"
	printf '  ],\n  "scaling_matrix": %s,\n  "cluster": %s\n}\n' "$matrix" "$clusterjson"
} > "$out"

echo "wrote $out" >&2
