#!/usr/bin/env bash
# Records the perf trajectory of the paper-table benchmarks (Figure 4,
# Table 2, Table 3), the multi-stream pool benchmarks, the serving
# layer's ingest frame decode and the resilient client's send path as a
# JSON snapshot: ns/elem, allocs/op, elems/s and the other reported
# metrics. BenchmarkClientSend's allocs/op proves the client's
# steady-state send (stage, window copy, ping cadence, ack drain) stays
# at zero allocations.
#
# The snapshot also embeds the multicore scaling matrix
# (scripts/scalingmatrix): GOMAXPROCS × shards × {uniform, zipf:0.99} ×
# {steady, burst}, each cell with Melem/s and p50/p99/p999 batch-accept
# latency — the adversarial referee's headline numbers — and the
# cluster-tier costs (scripts/clusterbench): routing overhead of the
# 3-node fan-out vs a direct single-node dial (ns/elem, Melem/s) and
# the migration pause p99 a client sees while a stream moves live.
#
# Usage:  scripts/bench.sh [out.json]
#         BENCHTIME=10x scripts/bench.sh      # more iterations, stabler numbers
#         MATRIX=-quick scripts/bench.sh      # tiny matrix cells (CI smoke)
#         MATRIX=skip scripts/bench.sh        # micro benchmarks only
#         CLUSTER=-quick scripts/bench.sh     # tiny cluster runs
#         CLUSTER=skip scripts/bench.sh       # skip the cluster section
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr8.json}"
benchtime="${BENCHTIME:-1x}"
matrix_mode="${MATRIX:-}"
cluster_mode="${CLUSTER:-}"

raw=$(go test -run '^$' -bench 'Fig4|Table2|Table3|PoolFeed|IngestFrameDecode|ClientSend' -benchtime "$benchtime" -benchmem . ./internal/client)
echo "$raw" >&2

results=$(echo "$raw" | awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	rec = sprintf("    {\"bench\": \"%s\", \"iters\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2)
		rec = rec sprintf(", \"%s\": %s", $(i+1), $i)
	rec = rec "}"
	recs[n++] = rec
}
END {
	for (i = 0; i < n; i++)
		printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
}')

if [ "$matrix_mode" = "skip" ]; then
	matrix="[]"
else
	matrix=$(go run ./scripts/scalingmatrix $matrix_mode)
fi

if [ "$cluster_mode" = "skip" ]; then
	clusterjson="null"
else
	clusterjson=$(go run ./scripts/clusterbench $cluster_mode)
fi

{
	printf '{\n  "date": "%s",\n  "results": [\n' "$(date -u +%FT%TZ)"
	printf '%s\n' "$results"
	printf '  ],\n  "scaling_matrix": %s,\n  "cluster": %s\n}\n' "$matrix" "$clusterjson"
} > "$out"

echo "wrote $out" >&2
