#!/usr/bin/env bash
# cluster_smoke.sh — three real dpdserver processes, zipf traffic
# through the routing client, one live migration, one kill -9 failover.
#
# This is the out-of-process counterpart to the in-process cluster
# differentials: it proves the actual binaries wire the cluster flags
# correctly end to end. Every dpdload run barriers before exiting, so a
# zero exit status means every sample was applied by some node's pool.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
cleanup() {
    kill -9 "${pids[@]}" 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT
go build -o "$bin" ./cmd/dpdserver ./cmd/dpdload

# Fixed high ports; name=ingest,http,transfer per member.
M1="-cluster-node n1=127.0.0.1:17700,127.0.0.1:17701,127.0.0.1:17702"
M2="-cluster-node n2=127.0.0.1:17710,127.0.0.1:17711,127.0.0.1:17712"
M3="-cluster-node n3=127.0.0.1:17720,127.0.0.1:17721,127.0.0.1:17722"
HTTPS=(127.0.0.1:17701 127.0.0.1:17711 127.0.0.1:17721)
pids=()
for i in 1 2 3; do
    ingest="127.0.0.1:177$((i - 1))0"
    http="127.0.0.1:177$((i - 1))1"
    # shellcheck disable=SC2086 # member flags are intentionally word-split
    "$bin/dpdserver" -ingest "$ingest" -http "$http" \
        -cluster-self "n$i" $M1 $M2 $M3 -follow-every 50ms &
    pids+=($!)
done

# Wait for every node to serve its routing table.
for h in "${HTTPS[@]}"; do
    for _ in $(seq 100); do
        curl -fsS "http://$h/cluster/route" >/dev/null 2>&1 && break
        sleep 0.1
    done
    curl -fsS "http://$h/cluster/route" >/dev/null
done
echo "cluster_smoke: 3 nodes up"

routers="${HTTPS[0]},${HTTPS[1]},${HTTPS[2]}"

# 1. Skewed traffic through the router: hot keys hammer one owner.
"$bin/dpdload" -cluster "$routers" -conns 2 -streams 48 -samples 1024 \
    -batch 64 -dist zipf:0.99 -seed 7

# 2. Live migration. A self-move is a 200 no-op on the owner and a
#    refusal everywhere else, so it locates key 0's owner without
#    changing anything; then one real move must bump the epoch by one.
epoch() { curl -fsS "http://${HTTPS[0]}/cluster/route" | grep -o '"epoch": *[0-9]*' | grep -o '[0-9]*'; }
before="$(epoch)"
owner="" owner_http=""
for i in 1 2 3; do
    h="${HTTPS[$((i - 1))]}"
    if curl -fsS -X POST "http://$h/cluster/move?key=0&to=n$i" >/dev/null 2>&1; then
        if [ -n "$owner" ]; then
            echo "cluster_smoke: both $owner and n$i claim key 0" >&2
            exit 1
        fi
        owner="n$i" owner_http="$h"
    fi
done
if [ -z "$owner" ]; then
    echo "cluster_smoke: no node claims key 0" >&2
    exit 1
fi
target="n1"
[ "$owner" = "n1" ] && target="n2"
curl -fsS -X POST "http://$owner_http/cluster/move?key=0&to=$target" >/dev/null
after="$(epoch)"
if [ "$after" -ne $((before + 1)) ]; then
    echo "cluster_smoke: move bumped epoch $before -> $after, want +1" >&2
    exit 1
fi
# The old owner no longer accepts a move for the key it gave away.
if curl -fsS -X POST "http://$owner_http/cluster/move?key=0&to=$owner" >/dev/null 2>&1; then
    echo "cluster_smoke: old owner $owner still accepts moves for key 0" >&2
    exit 1
fi
echo "cluster_smoke: migrated key 0 $owner -> $target (epoch $after)"

# 3. Traffic after the move still lands exactly once, across the bumped
#    epoch (fresh keys plus the migrated one).
"$bin/dpdload" -cluster "$routers" -conns 2 -streams 48 -samples 512 \
    -batch 64 -seed 8

# 4. Kill an owner without goodbye and fail its streams over.
kill -9 "${pids[2]}"
curl -fsS -X POST "http://${HTTPS[0]}/cluster/failover?node=n3" >/dev/null
if curl -fsS "http://${HTTPS[0]}/cluster/route" | grep -q '"n3"'; then
    echo "cluster_smoke: n3 still in the routing table after failover" >&2
    exit 1
fi

# 5. Survivors carry the full keyspace; the router routes around n3.
"$bin/dpdload" -cluster "${HTTPS[0]},${HTTPS[1]}" -conns 2 -streams 48 \
    -samples 512 -batch 64 -dist zipf:0.99 -seed 9
echo "cluster_smoke: OK"
