// Command clusterbench measures the cluster tier's two headline costs
// and emits them as JSON on stdout for scripts/bench.sh to embed in
// BENCH_pr<N>.json:
//
//   - Routing overhead: the same seeded workload driven end to end
//     through one standalone dpdserver (direct dial) and through a
//     3-node cluster behind the routing client (table fetch, per-owner
//     fan-out, barrier across members) — Melem/s and ns/elem for both,
//     plus the per-element difference.
//   - Migration pause: a rate-limited run during which two streams
//     migrate between nodes live; the batch-accept latency histogram
//     (PR 7) captures the stall a client sees while an owner fences,
//     detaches, ships and flips — reported as p99/p999/max next to a
//     no-migration baseline at the identical rate.
//
// Everything is in-process (real TCP ingest + transfer sockets on
// loopback, like the cluster differentials), so the numbers isolate
// protocol cost from container scheduling noise as far as possible.
//
//	go run ./scripts/clusterbench            # full measurement
//	go run ./scripts/clusterbench -quick     # CI-sized smoke
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dpd"
	"dpd/internal/cluster"
	"dpd/internal/loadgen"
	"dpd/internal/server"
)

// measure is one run's cost summary.
type measure struct {
	Samples   uint64  `json:"samples"`
	Melems    float64 `json:"melems_per_sec"`
	NsPerElem float64 `json:"ns_per_elem"`
	P50Ns     int64   `json:"p50_ns"`
	P99Ns     int64   `json:"p99_ns"`
	P999Ns    int64   `json:"p999_ns"`
	MaxNs     int64   `json:"max_ns"`
	Redirects uint64  `json:"redirects,omitempty"`
}

func toMeasure(rep loadgen.Report) measure {
	m := measure{
		Samples:   rep.Samples,
		Melems:    rep.MelemsPerSec,
		P50Ns:     rep.P50.Nanoseconds(),
		P99Ns:     rep.P99.Nanoseconds(),
		P999Ns:    rep.P999.Nanoseconds(),
		MaxNs:     rep.MaxLatency.Nanoseconds(),
		Redirects: rep.Redirects,
	}
	if rep.Samples > 0 {
		m.NsPerElem = float64(rep.Elapsed.Nanoseconds()) / float64(rep.Samples)
	}
	return m
}

// result is the full clusterbench report.
type result struct {
	// Direct is the workload against one standalone server.
	Direct measure `json:"direct_single_node"`
	// Routed is the identical workload through the 3-node routing
	// client.
	Routed measure `json:"routed_3node"`
	// OverheadNsPerElem is Routed minus Direct per element: the price
	// of table-driven fan-out and cross-member barriers.
	OverheadNsPerElem float64 `json:"routing_overhead_ns_per_elem"`
	// MigrationBaseline is a rate-limited cluster run with no topology
	// changes; Migration is the same run with two live moves racing the
	// traffic. Their p99 gap is the migration pause as a client sees it.
	MigrationBaseline measure `json:"migration_baseline"`
	Migration         measure `json:"migration"`
}

var silent = func(string, ...any) {}

// bootNode starts one in-process cluster member, wired exactly as
// cmd/dpdserver wires cluster mode.
type benchNode struct {
	name string
	srv  *server.Server
	node *cluster.Node
}

func bootNode(name string) *benchNode {
	node, err := cluster.NewNode(cluster.NodeConfig{
		Self:         name,
		TransferAddr: "127.0.0.1:0",
		FollowEvery:  200 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Logf:         silent,
	})
	if err != nil {
		log.Fatalf("clusterbench: %v", err)
	}
	srv, err := server.New(server.Config{
		IngestAddr:         "127.0.0.1:0",
		HTTPAddr:           "127.0.0.1:0",
		Pool:               dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}},
		OwnerCheck:         node.OwnerCheck,
		RegisterHTTP:       node.RegisterHTTP,
		ClusterMetrics:     node.Metrics,
		ExternalDurability: true,
		Logf:               silent,
	})
	if err != nil {
		log.Fatalf("clusterbench: %v", err)
	}
	node.Start(srv)
	srv.Start()
	return &benchNode{name: name, srv: srv, node: node}
}

func (b *benchNode) close() {
	b.node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b.srv.Shutdown(ctx)
}

// bootCluster boots three members sharing an epoch-1 table.
func bootCluster() []*benchNode {
	nodes := []*benchNode{bootNode("n1"), bootNode("n2"), bootNode("n3")}
	members := make([]cluster.Member, len(nodes))
	for i, bn := range nodes {
		members[i] = cluster.Member{
			Name:     bn.name,
			Ingest:   bn.srv.Addr(),
			HTTP:     bn.srv.HTTPAddr(),
			Transfer: bn.node.TransferAddr(),
		}
	}
	tab, err := cluster.NewTable(1, members, nil)
	if err != nil {
		log.Fatalf("clusterbench: %v", err)
	}
	for _, bn := range nodes {
		if err := bn.node.InstallTable(tab); err != nil {
			log.Fatalf("clusterbench: %v", err)
		}
	}
	return nodes
}

func clusterHTTP(nodes []*benchNode) []string {
	addrs := make([]string, len(nodes))
	for i, bn := range nodes {
		addrs[i] = bn.srv.HTTPAddr()
	}
	return addrs
}

// clusterApplied sums applied samples across members.
func clusterApplied(nodes []*benchNode) uint64 {
	var total uint64
	for _, bn := range nodes {
		for _, st := range bn.srv.Pool().Snapshot(nil) {
			total += st.Samples
		}
	}
	return total
}

// moveKey migrates key from its current owner to the next member in
// ring order, blocking until every node converged on the new epoch.
func moveKey(nodes []*benchNode, key uint64) {
	var newest *cluster.Table
	for _, bn := range nodes {
		if t := bn.node.Table(); t != nil && (newest == nil || t.Epoch > newest.Epoch) {
			newest = t
		}
	}
	owner := newest.Owner(key).Name
	var src *benchNode
	target := ""
	for i, bn := range nodes {
		if bn.name == owner {
			src = bn
			target = nodes[(i+1)%len(nodes)].name
		}
	}
	next, err := src.node.Move(key, target)
	if err != nil {
		log.Fatalf("clusterbench: move %d: %v", key, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, bn := range nodes {
			if t := bn.node.Table(); t == nil || t.Epoch < next.Epoch {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("clusterbench: cluster never converged on epoch %d", next.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func main() {
	quick := flag.Bool("quick", false, "tiny runs for CI smoke: prove the measurement, skip the statistics")
	seed := flag.Uint64("seed", 42, "workload seed shared by every run")
	flag.Parse()

	base := loadgen.Config{
		Conns:            2,
		Streams:          48,
		SamplesPerStream: 4096,
		BatchSize:        128,
		Period:           12,
		Window:           16,
		RetryBudget:      10 * time.Second,
		Workload:         loadgen.Workload{Seed: *seed},
	}
	// The migration runs are rate-limited so the moves race real
	// in-flight traffic instead of an already-finished run.
	migRate := 50000.0
	if *quick {
		base.SamplesPerStream = 512
		migRate = 20000
	}
	ctx := context.Background()

	// 1. Direct: one standalone server, no cluster hooks.
	solo, err := server.New(server.Config{
		IngestAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Pool:       dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}},
		Logf:       silent,
	})
	if err != nil {
		log.Fatalf("clusterbench: %v", err)
	}
	solo.Start()
	cfg := base
	cfg.Addr = solo.Addr()
	directRep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatalf("clusterbench: direct run: %v", err)
	}
	{
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		solo.Shutdown(sctx)
		cancel()
	}

	// 2. Routed: the identical workload through the 3-node router.
	nodes := bootCluster()
	cfg = base
	cfg.ClusterHTTP = clusterHTTP(nodes)
	routedRep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatalf("clusterbench: routed run: %v", err)
	}

	// 3. Migration pause: same cluster, rate-limited; baseline first,
	// then the identical run with two live moves at ~1/4 progress.
	cfg.KeyBase = 1 << 20 // fresh keys: placement, not residue, decides owners
	cfg.Rate = migRate
	baseRep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatalf("clusterbench: migration baseline: %v", err)
	}

	cfg.KeyBase = 2 << 20
	before := clusterApplied(nodes)
	total := uint64(cfg.Streams * cfg.SamplesPerStream)
	done := make(chan struct{})
	var migRep loadgen.Report
	var migErr error
	go func() {
		defer close(done)
		migRep, migErr = loadgen.Run(ctx, cfg)
	}()
	for clusterApplied(nodes)-before < total/4 {
		time.Sleep(5 * time.Millisecond)
	}
	moveKey(nodes, cfg.KeyBase)
	moveKey(nodes, cfg.KeyBase+1)
	<-done
	if migErr != nil {
		log.Fatalf("clusterbench: migration run: %v", migErr)
	}
	for _, bn := range nodes {
		bn.close()
	}

	res := result{
		Direct:            toMeasure(directRep),
		Routed:            toMeasure(routedRep),
		MigrationBaseline: toMeasure(baseRep),
		Migration:         toMeasure(migRep),
	}
	res.OverheadNsPerElem = res.Routed.NsPerElem - res.Direct.NsPerElem
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "clusterbench: direct %.2f Melem/s, routed %.2f Melem/s (+%.0f ns/elem), migration p99 %v vs baseline %v\n",
		res.Direct.Melems, res.Routed.Melems, res.OverheadNsPerElem,
		time.Duration(res.Migration.P99Ns), time.Duration(res.MigrationBaseline.P99Ns))
}
