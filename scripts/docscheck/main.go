// Command docscheck is the CI docs gate: it fails (exit 1, one line per
// violation) when a package lacks a package comment or an exported
// top-level symbol lacks a doc comment, so the rendered godoc stays
// complete as the API grows.
//
// Checked: every non-test .go file under the module root. A doc comment
// on a const/var/type block covers the specs inside it; methods are
// checked when both the receiver type and the method are exported.
//
// Usage (from the repo root):
//
//	go run ./scripts/docscheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	fset := token.NewFileSet()
	pkgDocumented := map[string]bool{} // dir → has a package comment

	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		files = append(files, path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}

	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			pkgDocumented[dir] = true
		} else if _, seen := pkgDocumented[dir]; !seen {
			pkgDocumented[dir] = false
		}
		violations = append(violations, checkFile(fset, path, f)...)
	}

	var dirs []string
	for dir, ok := range pkgDocumented {
		if !ok {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		violations = append(violations, fmt.Sprintf("%s: package has no package comment", dir))
	}

	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d undocumented exported symbols/packages\n", len(violations))
		os.Exit(1)
	}
}

// checkFile reports every exported, undocumented top-level declaration.
func checkFile(fset *token.FileSet, path string, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s has no doc comment", path, p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "func "+d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
				continue
			}
			blockDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !blockDoc && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if blockDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), d.Tok.String()+" "+n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether a method's receiver type is exported
// (or the decl is a plain function); methods on unexported types are not
// part of the rendered API surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
