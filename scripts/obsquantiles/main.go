// Command obsquantiles measures the PR 10 server-side latency
// histograms end to end: it boots one in-process server with the
// observability core at its default strides, drives a seeded loadgen
// workload through the real ingest plane, writes one checkpoint, and
// prints the /metrics latency section (p50/p99/p999 per instrumented
// site) as JSON for scripts/bench.sh to embed in the snapshot.
//
// Usage: go run ./scripts/obsquantiles [-quick]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"dpd"
	"dpd/internal/loadgen"
	"dpd/internal/obs"
	"dpd/internal/server"
)

func main() {
	quick := flag.Bool("quick", false, "small run (CI smoke)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "obsquantiles")
	if err != nil {
		log.Fatalf("obsquantiles: %v", err)
	}
	defer os.RemoveAll(dir)

	obsSet := obs.NewSet(0)
	srv, err := server.New(server.Config{
		IngestAddr:    "127.0.0.1:0",
		HTTPAddr:      "127.0.0.1:0",
		Pool:          dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}},
		CheckpointDir: dir,
		Obs:           obsSet,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		log.Fatalf("obsquantiles: %v", err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cfg := loadgen.Config{
		Addr:             srv.Addr(),
		Conns:            2,
		Streams:          64,
		SamplesPerStream: 4096,
		BatchSize:        128,
		Window:           16,
		RetryBudget:      10 * time.Second,
		Workload:         loadgen.Workload{Seed: 42},
	}
	if *quick {
		cfg.SamplesPerStream = 512
	}
	if _, err := loadgen.Run(context.Background(), cfg); err != nil {
		log.Fatalf("obsquantiles: run: %v", err)
	}
	if _, err := srv.WriteCheckpoint(); err != nil {
		log.Fatalf("obsquantiles: checkpoint: %v", err)
	}

	resp, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		log.Fatalf("obsquantiles: scrape: %v", err)
	}
	defer resp.Body.Close()
	var m struct {
		Latency json.RawMessage `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatalf("obsquantiles: decode: %v", err)
	}
	fmt.Println(string(m.Latency))
}
