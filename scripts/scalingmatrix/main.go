// Command scalingmatrix sweeps the multicore scaling matrix the repo
// uses as its perf referee: GOMAXPROCS × pool shards × key distribution
// {uniform, zipf:0.99} × arrival shape {steady, burst}, each cell
// driven in-process through internal/loadgen's shared drive loop
// against a dpd.Pool, reporting Melem/s and batch-accept latency
// quantiles (p50/p99/p999) as a JSON array on stdout.
//
// The matrix is seeded, so two sweeps on the same machine produce the
// identical sample sequences; only the timings differ. scripts/bench.sh
// embeds the output in BENCH_pr7.json next to the micro benchmarks.
//
//	go run ./scripts/scalingmatrix            # full sweep
//	go run ./scripts/scalingmatrix -quick     # CI smoke: tiny cells
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"dpd"
	"dpd/internal/loadgen"
)

// cell is one matrix measurement.
type cell struct {
	Procs        int     `json:"procs"`
	Shards       int     `json:"shards"`
	Dist         string  `json:"dist"`
	Arrival      string  `json:"arrival"`
	Samples      uint64  `json:"samples"`
	Streams      int     `json:"distinct_streams"`
	MelemsWall   float64 `json:"melems_wall"`
	MelemsActive float64 `json:"melems_active"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	P999Ns       int64   `json:"p999_ns"`
	MaxNs        int64   `json:"max_ns"`
}

func main() {
	quick := flag.Bool("quick", false, "tiny cells for CI smoke: prove the sweep, skip the statistics")
	seed := flag.Uint64("seed", 42, "workload seed shared by every cell")
	flag.Parse()

	samples := 2048
	conns := 8
	if *quick {
		samples, conns = 128, 4
	}
	procsList := []int{}
	for p := 1; p <= runtime.NumCPU(); p *= 2 {
		procsList = append(procsList, p)
	}
	shardsList := []int{1, 2, 4, 8}
	dists := []loadgen.Dist{{}, {Kind: loadgen.DistZipf, Theta: 0.99}}
	arrivals := []string{"steady", "burst"}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var cells []cell
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		for _, shards := range shardsList {
			for _, dist := range dists {
				for _, arrival := range arrivals {
					c, err := runCell(procs, shards, dist, arrival, conns, samples, *seed)
					if err != nil {
						log.Fatalf("scalingmatrix: procs=%d shards=%d %s/%s: %v", procs, shards, dist, arrival, err)
					}
					cells = append(cells, c)
					fmt.Fprintf(os.Stderr, "procs=%d shards=%d %-7s %-6s  %8.2f Melem/s  p99=%dns\n",
						procs, shards, c.Dist, arrival, c.MelemsActive, c.P99Ns)
				}
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cells); err != nil {
		log.Fatal(err)
	}
}

// runCell measures one (procs, shards, dist, arrival) point.
func runCell(procs, shards int, dist loadgen.Dist, arrival string, conns, samples int, seed uint64) (cell, error) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: shards, Detector: dpd.Config{Window: 64}})
	if err != nil {
		return cell{}, err
	}
	defer p.Close()
	cfg := loadgen.Config{
		Conns:            conns,
		Streams:          32 * conns,
		SamplesPerStream: samples,
		BatchSize:        256,
		Period:           8,
		Workload:         loadgen.Workload{Dist: dist, Seed: seed},
	}
	if arrival == "burst" {
		phases, err := loadgen.ParseBurst(fmt.Sprintf("%d:2ms", 16*cfg.BatchSize))
		if err != nil {
			return cell{}, err
		}
		cfg.Workload.Phases = phases
	}
	rep, err := loadgen.RunPool(context.Background(), cfg, p)
	if err != nil {
		return cell{}, err
	}
	active := rep.MelemsPerSec
	if len(rep.Phases) > 0 && rep.Phases[0].MelemsPerSec > 0 {
		active = rep.Phases[0].MelemsPerSec
	}
	return cell{
		Procs:        procs,
		Shards:       shards,
		Dist:         dist.String(),
		Arrival:      arrival,
		Samples:      rep.Samples,
		Streams:      rep.DistinctStreams,
		MelemsWall:   rep.MelemsPerSec,
		MelemsActive: active,
		P50Ns:        rep.P50.Nanoseconds(),
		P99Ns:        rep.P99.Nanoseconds(),
		P999Ns:       rep.P999.Nanoseconds(),
		MaxNs:        rep.MaxLatency.Nanoseconds(),
	}, nil
}
