// Command scalingmatrix sweeps the multicore scaling matrix the repo
// uses as its perf referee: GOMAXPROCS × pool shards × key distribution
// {uniform, zipf:0.99, zipf:1.2} × arrival shape {steady, burst} ×
// adaptive placement {off, on}, each cell driven in-process through
// internal/loadgen's shared drive loop against a dpd.Pool, reporting
// Melem/s and batch-accept latency quantiles (p50/p99/p999) as a JSON
// array on stdout. Adaptive cells also report the promotion counters
// and the max shard share of cold traffic — the observable that hot
// promotion actually drains the celebrity's home shard.
//
// The matrix is seeded, so two sweeps on the same machine produce the
// identical sample sequences; only the timings differ. scripts/bench.sh
// embeds the output in BENCH_pr7.json next to the micro benchmarks.
//
//	go run ./scripts/scalingmatrix            # full sweep
//	go run ./scripts/scalingmatrix -quick     # CI smoke: tiny cells
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"dpd"
	"dpd/internal/loadgen"
)

// cell is one matrix measurement.
type cell struct {
	Procs        int     `json:"procs"`
	Shards       int     `json:"shards"`
	Dist         string  `json:"dist"`
	Arrival      string  `json:"arrival"`
	Samples      uint64  `json:"samples"`
	Streams      int     `json:"distinct_streams"`
	MelemsWall   float64 `json:"melems_wall"`
	MelemsActive float64 `json:"melems_active"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	P999Ns       int64   `json:"p999_ns"`
	MaxNs        int64   `json:"max_ns"`
	// Adaptive marks cells run with contention-adaptive placement on;
	// Promotions/HotStreams come from Pool.AdaptiveStats at run end.
	Adaptive   bool   `json:"adaptive"`
	Promotions uint64 `json:"promotions,omitempty"`
	HotStreams int    `json:"hot_streams,omitempty"`
	// MaxShardShare is the hottest shard's fraction of shard-routed
	// traffic (hot-worker traffic excluded): skew that remains after
	// placement has had its say.
	MaxShardShare float64 `json:"max_shard_share"`
}

func main() {
	quick := flag.Bool("quick", false, "tiny cells for CI smoke: prove the sweep, skip the statistics")
	seed := flag.Uint64("seed", 42, "workload seed shared by every cell")
	flag.Parse()

	samples := 2048
	conns := 8
	if *quick {
		samples, conns = 128, 4
	}
	procsList := []int{}
	for p := 1; p <= runtime.NumCPU(); p *= 2 {
		procsList = append(procsList, p)
	}
	shardsList := []int{1, 2, 4, 8}
	dists := []loadgen.Dist{{}, {Kind: loadgen.DistZipf, Theta: 0.99}, {Kind: loadgen.DistZipf, Theta: 1.2}}
	arrivals := []string{"steady", "burst"}
	adaptives := []bool{false, true}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var cells []cell
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		for _, shards := range shardsList {
			for _, dist := range dists {
				for _, arrival := range arrivals {
					for _, adaptive := range adaptives {
						c, err := runCell(procs, shards, dist, arrival, conns, samples, *seed, adaptive)
						if err != nil {
							log.Fatalf("scalingmatrix: procs=%d shards=%d %s/%s adaptive=%v: %v", procs, shards, dist, arrival, adaptive, err)
						}
						cells = append(cells, c)
						fmt.Fprintf(os.Stderr, "procs=%d shards=%d %-8s %-6s adaptive=%-5v %8.2f Melem/s  p99=%dns  hot=%d maxshard=%.2f\n",
							procs, shards, c.Dist, arrival, adaptive, c.MelemsActive, c.P99Ns, c.HotStreams, c.MaxShardShare)
					}
				}
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cells); err != nil {
		log.Fatal(err)
	}
}

// runCell measures one (procs, shards, dist, arrival, adaptive) point.
func runCell(procs, shards int, dist loadgen.Dist, arrival string, conns, samples int, seed uint64, adaptive bool) (cell, error) {
	pcfg := dpd.PoolConfig{Shards: shards, Detector: dpd.Config{Window: 64}}
	if adaptive {
		// Global-share thresholds matched to the harness's
		// per-connection zipf shape (see internal/loadgen adaptive
		// differential): each connection's rank-0 key is ~5% of global
		// traffic, so 3% promotes the celebrities and nothing else.
		pcfg.Adaptive = dpd.AdaptiveConfig{
			Enable:         true,
			MaxHot:         8,
			FoldEvery:      5 * time.Millisecond,
			PromoteShare:   0.03,
			DemoteShare:    0.005,
			PromoteAfter:   1,
			DemoteAfter:    25,
			MinFoldSamples: 512,
		}
	}
	p, err := dpd.NewPool(pcfg)
	if err != nil {
		return cell{}, err
	}
	defer p.Close()
	cfg := loadgen.Config{
		Conns:            conns,
		Streams:          32 * conns,
		SamplesPerStream: samples,
		BatchSize:        256,
		Period:           8,
		Workload:         loadgen.Workload{Dist: dist, Seed: seed},
	}
	if arrival == "burst" {
		phases, err := loadgen.ParseBurst(fmt.Sprintf("%d:2ms", 16*cfg.BatchSize))
		if err != nil {
			return cell{}, err
		}
		cfg.Workload.Phases = phases
	}
	rep, err := loadgen.RunPool(context.Background(), cfg, p)
	if err != nil {
		return cell{}, err
	}
	active := rep.MelemsPerSec
	if len(rep.Phases) > 0 && rep.Phases[0].MelemsPerSec > 0 {
		active = rep.Phases[0].MelemsPerSec
	}
	c := cell{
		Procs:        procs,
		Shards:       shards,
		Dist:         dist.String(),
		Arrival:      arrival,
		Samples:      rep.Samples,
		Streams:      rep.DistinctStreams,
		MelemsWall:   rep.MelemsPerSec,
		MelemsActive: active,
		P50Ns:        rep.P50.Nanoseconds(),
		P99Ns:        rep.P99.Nanoseconds(),
		P999Ns:       rep.P999.Nanoseconds(),
		MaxNs:        rep.MaxLatency.Nanoseconds(),
		Adaptive:     adaptive,
	}
	if st := p.AdaptiveStats(); st.Enabled {
		c.Promotions, c.HotStreams = st.Promotions, st.HotStreams
	}
	var total uint64
	shardSamples := p.ShardSamples(nil)
	for _, n := range shardSamples {
		total += n
		if f := float64(n); total > 0 && f > c.MaxShardShare {
			c.MaxShardShare = f
		}
	}
	if total > 0 {
		c.MaxShardShare /= float64(total)
	}
	return c, nil
}
